(* Translation validation: the vectorized (or unrolled) body must touch the
   same memory as the scalar kernel it came from.

   One vector-loop iteration covers VF scalar iterations ("lanes"); the
   validator expands both sides to per-lane symbolic addresses and compares
   the multisets.  Addresses are compared syntactically after normalizing
   subscripts (sorted terms, dropped zero coefficients) and shifting the
   innermost variable by the lane distance, which is exactly the
   transformation [Llv]/[Slp]/[Unroll] apply.  Indirect accesses cannot be
   resolved statically; they are compared by (array, direction) multiplicity
   under the index-array contract.

   The vectorizers may legitimately deviate from a 1:1 mapping in two ways:
     - a loop-invariant load is collapsed to a single scalar load
       (LLV keeps one [Sc] copy, SLP one [Invariant] copy);
     - SLP drops instructions that feed no store (demand-driven emission).
   The load comparison therefore brackets the vector count between the
   scalar kernel's *live* accesses and its total accesses; stores are never
   dead and never collapsed, so they must match exactly. *)

open Vir
module Vinstr = Vvect.Vinstr

type akind = Aload | Astore

type akey =
  | Aff of (string * (string * int) list * (string * int) list * int * bool) list
      (* per dim: (terms, pterms, off, rel_n), with the array name outside *)
  | Ind

type key = { arr : string; akind : akind; addr : akey }

let normalize_dim (d : Instr.dim) =
  let nz = List.filter (fun (_, c) -> c <> 0) in
  ( "",
    List.sort compare (nz d.Instr.terms),
    List.sort compare (nz d.Instr.pterms),
    d.Instr.off,
    d.Instr.rel_n )

let key_of_dims ~arr ~akind dims =
  { arr; akind; addr = Aff (List.map normalize_dim dims) }

let key_of_addr ~akind = function
  | Instr.Affine { arr; dims } -> key_of_dims ~arr ~akind dims
  | Instr.Indirect { arr; _ } -> { arr; akind; addr = Ind }

(* The address [lane] innermost steps later. *)
let shift_lane (inner : Kernel.loop) lane dims =
  List.map (Instr.shift_dim inner.Kernel.var (lane * inner.Kernel.step)) dims

let shift_addr (inner : Kernel.loop) lane = function
  | Instr.Affine { arr; dims } ->
      Instr.Affine { arr; dims = shift_lane inner lane dims }
  | Instr.Indirect _ as a -> a

let key_invariant (inner : Kernel.loop) = function
  | { addr = Ind; _ } -> false
  | { addr = Aff dims; _ } ->
      List.for_all
        (fun (_, terms, _, _, _) ->
          not (List.mem_assoc inner.Kernel.var terms))
        dims

(* Human rendering of a key for diagnostics. *)
let key_to_string k =
  let dir = match k.akind with Aload -> "load" | Astore -> "store" in
  match k.addr with
  | Ind -> Printf.sprintf "%s %s[<indirect>]" dir k.arr
  | Aff dims ->
      let dim_str (_, terms, pterms, off, rel_n) =
        let parts =
          (if rel_n then [ "(n-1)" ] else [])
          @ List.map
              (fun (v, c) ->
                if c = 1 then v else Printf.sprintf "%d*%s" c v)
              (terms @ pterms)
          @ (if off <> 0 then [ string_of_int off ] else [])
        in
        match parts with [] -> "0" | ps -> String.concat "+" ps
      in
      Printf.sprintf "%s %s[%s]" dir k.arr
        (String.concat "][" (List.map dim_str dims))

(* --- multiset accumulation ------------------------------------------------ *)

let bump tbl key delta =
  let c = match Hashtbl.find_opt tbl key with Some c -> c | None -> 0 in
  Hashtbl.replace tbl key (c + delta)

let get tbl key =
  match Hashtbl.find_opt tbl key with Some c -> c | None -> 0

(* Scalar-side multisets over [lanes] consecutive iterations: total counts
   and counts restricted to live instructions (stores are always live). *)
let scalar_tables (df : Dataflow.t) ~lanes =
  let inner = Kernel.innermost df.kernel in
  let total = Hashtbl.create 32 and live = Hashtbl.create 32 in
  Array.iteri
    (fun pos instr ->
      let record akind addr is_live =
        for lane = 0 to lanes - 1 do
          let key = key_of_addr ~akind (shift_addr inner lane addr) in
          bump total key 1;
          if is_live then bump live key 1
        done
      in
      match instr with
      | Instr.Load { addr; _ } -> record Aload addr df.live.(pos)
      | Instr.Store { addr; _ } -> record Astore addr true
      | _ -> ())
    df.body;
  (total, live)

(* Vector-side multiset: one vkernel body execution covers [vf] lanes. *)
let vector_table (vk : Vinstr.vkernel) =
  let inner = Kernel.innermost vk.scalar in
  let vf = vk.vf in
  let tbl = Hashtbl.create 32 in
  let wide akind arr dims =
    for lane = 0 to vf - 1 do
      bump tbl (key_of_dims ~arr ~akind (shift_lane inner lane dims)) 1
    done
  in
  List.iter
    (fun (vi : Vinstr.t) ->
      match vi with
      | Vinstr.Vload { arr; dims; _ } -> wide Aload arr dims
      | Vinstr.Vstore { arr; dims; _ } -> wide Astore arr dims
      | Vinstr.Vgather { arr; _ } ->
          bump tbl { arr; akind = Aload; addr = Ind } vf
      | Vinstr.Vscatter { arr; _ } ->
          bump tbl { arr; akind = Astore; addr = Ind } vf
      | Vinstr.Sc { copy; instr } -> (
          (* [Sc] runs with the innermost variable bound to lane [copy]. *)
          let record akind addr =
            bump tbl (key_of_addr ~akind (shift_addr inner copy addr)) 1
          in
          match instr with
          | Instr.Load { addr; _ } -> record Aload addr
          | Instr.Store { addr; _ } -> record Astore addr
          | _ -> ())
      | Vinstr.Vbin _ | Vinstr.Vuna _ | Vinstr.Vfma _ | Vinstr.Vcmp _
      | Vinstr.Vselect _ | Vinstr.Viota _ | Vinstr.Vcast _ | Vinstr.Vpack _
      | Vinstr.Vextract _ ->
          ())
    vk.vbody;
  tbl

let keys_of tbls =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun tbl -> Hashtbl.iter (fun k _ -> Hashtbl.replace seen k ()) tbl)
    tbls;
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* --- vectorized-kernel checks --------------------------------------------- *)

let pass = "translation"

let memory_diags (vk : Vinstr.vkernel) : Diag.t list =
  let kernel = vk.scalar.Kernel.name in
  let inner = Kernel.innermost vk.scalar in
  let df = Dataflow.analyze vk.scalar in
  let s_total, s_live = scalar_tables df ~lanes:vk.vf in
  let v = vector_table vk in
  let out = ref [] in
  let err fmt = Printf.ksprintf (fun m ->
      out := Diag.error ~pass ~kernel "%s" m :: !out) fmt in
  List.iter
    (fun key ->
      let st = get s_total key and sl = get s_live key and vc = get v key in
      match key.akind with
      | Astore ->
          if vc <> st then
            err "%s: vector body performs %d per %d iterations, scalar %d"
              (key_to_string key) vc vk.vf st
      | Aload ->
          if key_invariant inner key then begin
            (* Invariant loads may collapse to one scalar copy. *)
            if sl > 0 && vc < 1 then
              err "%s: invariant load dropped by the vector body"
                (key_to_string key)
            else if vc > st then
              err "%s: vector body performs %d, scalar at most %d"
                (key_to_string key) vc st
          end
          else if vc < sl || vc > st then
            err "%s: vector body performs %d per %d iterations, scalar %d live \
                 (%d total)"
              (key_to_string key) vc vk.vf sl st)
    (keys_of [ s_total; v ]);
  List.rev !out

let reduction_diags (vk : Vinstr.vkernel) : Diag.t list =
  let kernel = vk.scalar.Kernel.name in
  let out = ref [] in
  let err fmt = Printf.ksprintf (fun m ->
      out := Diag.error ~pass ~kernel "%s" m :: !out) fmt in
  let sreds = vk.scalar.Kernel.reductions in
  if List.length sreds <> List.length vk.vreductions then
    err "scalar kernel has %d reductions, vector body %d" (List.length sreds)
      (List.length vk.vreductions);
  List.iter
    (fun (r : Kernel.reduction) ->
      match
        List.find_opt
          (fun (vr : Vinstr.vreduction) -> String.equal vr.vr_name r.red_name)
          vk.vreductions
      with
      | None -> err "reduction %s lost by vectorization" r.red_name
      | Some vr ->
          if vr.vr_op <> r.red_op then
            err "reduction %s: operator changed from %s to %s" r.red_name
              (Op.redop_to_string r.red_op)
              (Op.redop_to_string vr.vr_op);
          if not (Types.equal_scalar vr.vr_ty r.red_ty) then
            err "reduction %s: accumulator type changed from %s to %s"
              r.red_name (Types.to_string r.red_ty) (Types.to_string vr.vr_ty);
          if vr.vr_init <> r.red_init then
            err "reduction %s: initial value changed from %g to %g" r.red_name
              r.red_init vr.vr_init)
    sreds;
  List.rev !out

let vkernel_diags (vk : Vinstr.vkernel) : Diag.t list =
  memory_diags vk @ reduction_diags vk

(* --- unrolled-kernel checks ------------------------------------------------ *)

(* The unroller replicates everything: no collapse, no dead-code drop.  The
   unrolled body per iteration must match [uf] consecutive iterations of the
   original exactly, and the widened step must account for them. *)
let unrolled_diags ~(orig : Kernel.t) ~uf (u : Kernel.t) : Diag.t list =
  let kernel = orig.Kernel.name in
  let pass = "unroll-translation" in
  let out = ref [] in
  let err fmt = Printf.ksprintf (fun m ->
      out := Diag.error ~pass ~kernel "%s" m :: !out) fmt in
  let s_total, _ = scalar_tables (Dataflow.analyze orig) ~lanes:uf in
  let u_total, _ = scalar_tables (Dataflow.analyze u) ~lanes:1 in
  List.iter
    (fun key ->
      let sc = get s_total key and uc = get u_total key in
      if sc <> uc then
        err "%s: unrolled body performs %d per iteration, original %d over %d"
          (key_to_string key) uc sc uf)
    (keys_of [ s_total; u_total ]);
  let io = Kernel.innermost orig and iu = Kernel.innermost u in
  if iu.Kernel.step <> io.Kernel.step * uf then
    err "innermost step is %d, expected %d * %d" iu.Kernel.step io.Kernel.step
      uf;
  if List.length u.Kernel.reductions <> List.length orig.Kernel.reductions then
    err "unrolling changed the number of reductions from %d to %d"
      (List.length orig.Kernel.reductions)
      (List.length u.Kernel.reductions);
  List.iter
    (fun (r : Kernel.reduction) ->
      match
        List.find_opt
          (fun (ur : Kernel.reduction) -> String.equal ur.red_name r.red_name)
          u.Kernel.reductions
      with
      | None -> err "reduction %s lost by unrolling" r.red_name
      | Some ur ->
          if ur.red_op <> r.red_op || not (Types.equal_scalar ur.red_ty r.red_ty)
             || ur.red_init <> r.red_init
          then err "reduction %s altered by unrolling" r.red_name)
    orig.Kernel.reductions;
  List.rev !out

(* --- semantic equivalence against the reference interpreter ----------------- *)

(* The optimizer's passes claim *value* preservation, a stronger property
   than the address-multiset check above, and one we can decide by running
   both kernels under [Vinterp.Interp] in the deterministic default
   environment and comparing every array and reduction.  Every pass in
   [Opt] preserves each computed bit (only integer-exact rewrites, no float
   reassociation), so the comparison is exact — NaN compares equal to NaN
   so that an optimization moving an already-NaN value is not flagged. *)

let float_eq x y = x = y || (Float.is_nan x && Float.is_nan y)

let semantic_sizes = [ 17; 101 ]

let semantic_diags ?backend ?(sizes = semantic_sizes) ~pass ~orig (k : Kernel.t) =
  let err fmt = Diag.error ~pass ~kernel:k.Kernel.name fmt in
  (* Runs go through the selected execution backend (closure-compiled by
     default) — this check sits on the Dataset.build hot path via the
     optimizer's per-pass validation.  All backends share reference
     semantics, enforced by the exec equivalence suite. *)
  let backend =
    match backend with Some b -> b | None -> Vexec.Backend.default ()
  in
  let run n kernel =
    match Vexec.Backend.run ~n backend kernel with
    | r -> Ok (Vinterp.Env.snapshot r.Vinterp.Interp.env, r.Vinterp.Interp.reductions)
    | exception e -> Error (Printexc.to_string e)
  in
  let check_size n =
    match (run n orig, run n k) with
    | Error _, _ ->
        (* The original already traps under the default bindings; there is
           no reference behaviour to preserve. *)
        []
    | Ok _, Error e ->
        [ err "transformed kernel traps at n=%d where the original ran: %s" n e ]
    | Ok (s1, r1), Ok (s2, r2) ->
        let arr_diffs =
          if List.length s1 <> List.length s2
             || not
                  (List.for_all2
                     (fun (a, _) (b, _) -> String.equal a b)
                     s1 s2)
          then [ err "array set changed at n=%d" n ]
          else
            List.concat_map
              (fun ((name, x), (_, y)) ->
                if Array.length x <> Array.length y then
                  [ err "array %s changed length at n=%d" name n ]
                else
                  match
                    Array.to_seq (Array.mapi (fun i v -> (i, v)) x)
                    |> Seq.filter (fun (i, v) -> not (float_eq v y.(i)))
                    |> Seq.uncons
                  with
                  | Some ((i, v), _) ->
                      [ err "array %s differs at [%d]: %.17g vs %.17g (n=%d)"
                          name i v y.(i) n ]
                  | None -> [])
              (List.combine s1 s2)
        in
        let red_diffs =
          if List.length r1 <> List.length r2 then
            [ err "reduction set changed at n=%d" n ]
          else
            List.concat_map
              (fun ((a, x), (b, y)) ->
                if not (String.equal a b) then
                  [ err "reduction %s renamed to %s at n=%d" a b n ]
                else if not (float_eq x y) then
                  [ err "reduction %s differs: %.17g vs %.17g (n=%d)" a x y n ]
                else [])
              (List.combine r1 r2)
        in
        arr_diffs @ red_diffs
  in
  List.concat_map check_size sizes
