(* Analysis driver: run the scalar lints plus the vector-IR validation
   matrix (transform x VF) over one kernel or a whole registry, and render
   the results for humans or as JSON.  This is what both the [vecmodel
   lint] subcommand and the test-suite gate call. *)

open Vir

type transform = Tllv | Tslp | Tunroll

let all_transforms = [ Tllv; Tslp; Tunroll ]

let transform_to_string = function
  | Tllv -> "llv"
  | Tslp -> "slp"
  | Tunroll -> "unroll"

let transform_of_string = function
  | "llv" -> Some Tllv
  | "slp" -> Some Tslp
  | "unroll" -> Some Tunroll
  | _ -> None

(* The acceptance matrix: every kernel is validated at these factors. *)
let default_vfs = [ 2; 4; 8 ]

type vec_outcome =
  | Checked of Diag.t list  (* transform applied; validator diagnostics *)
  | Skipped of string  (* transform not applicable to this kernel *)

type vec_result = { vr_transform : transform; vr_vf : int; vr_outcome : vec_outcome }

type report = {
  r_kernel : string;
  r_scalar : Diag.t list;  (* lint passes over the scalar body *)
  r_vector : vec_result list;
}

let validate_transformed tr ~vf (k : Kernel.t) : vec_outcome =
  match tr with
  | Tllv -> (
      match Vvect.Llv.vectorize ~vf k with
      | Ok vk -> Checked (Vvalidate.errors vk)
      | Error e -> Skipped (Vvect.Llv.error_to_string e))
  | Tslp -> (
      match Vvect.Slp.vectorize ~vf k with
      | Ok vk -> Checked (Vvalidate.errors vk)
      | Error e -> Skipped (Vvect.Slp.error_to_string e))
  | Tunroll ->
      let u = Vvect.Unroll.by vf k in
      let structural =
        List.map
          (fun m ->
            Diag.error ~pass:"unroll-validate" ~kernel:k.Kernel.name "%s" m)
          (Validate.errors u)
      in
      Checked (structural @ Equiv.unrolled_diags ~orig:k ~uf:vf u)

(* Scalar diagnostics are canonicalized (total order + dedup) so the
   rendered report is byte-stable whatever the worker count; the vector
   matrix likewise per configuration. *)
let lint_kernel ?(transforms = all_transforms) ?(vfs = default_vfs)
    (k : Kernel.t) : report =
  let scalar = Diag.canonical (Pass.run_all k) in
  let vector =
    List.concat_map
      (fun tr ->
        List.map
          (fun vf ->
            let outcome =
              match validate_transformed tr ~vf k with
              | Checked ds -> Checked (Diag.canonical ds)
              | Skipped _ as s -> s
            in
            { vr_transform = tr; vr_vf = vf; vr_outcome = outcome })
          vfs)
      transforms
  in
  { r_kernel = k.Kernel.name; r_scalar = scalar; r_vector = vector }

(* Kernels are independent, so the registry-wide gate fans out over the
   shared domain pool; parallel_map keeps the report order deterministic. *)
let lint_kernels ?transforms ?vfs ks =
  Vpar.Pool.parallel_map (lint_kernel ?transforms ?vfs) ks

(* All diagnostics of a report, vector outcomes included. *)
let report_diags r =
  r.r_scalar
  @ List.concat_map
      (fun vr -> match vr.vr_outcome with Checked ds -> ds | Skipped _ -> [])
      r.r_vector

let error_count r = Diag.count_errors (report_diags r)
let has_errors r = error_count r > 0

(* --- human rendering -------------------------------------------------------- *)

let print_report ?(verbose = false) oc r =
  let diags = report_diags r in
  let errors = Diag.count_errors diags in
  let warnings =
    List.length (List.filter (fun d -> d.Diag.severity = Diag.Warning) diags)
  in
  let checked, skipped =
    List.partition
      (fun vr -> match vr.vr_outcome with Checked _ -> true | Skipped _ -> false)
      r.r_vector
  in
  Printf.fprintf oc "%-10s %d error(s), %d warning(s); vector IR checked %d/%d\n"
    r.r_kernel errors warnings (List.length checked) (List.length r.r_vector);
  List.iter
    (fun d ->
      if verbose || d.Diag.severity <> Diag.Info then
        Printf.fprintf oc "  %s\n" (Diag.to_string d))
    (Diag.sort diags);
  if verbose then
    List.iter
      (fun vr ->
        match vr.vr_outcome with
        | Skipped reason ->
            Printf.fprintf oc "  note: %s @ vf %d skipped: %s\n"
              (transform_to_string vr.vr_transform)
              vr.vr_vf reason
        | Checked _ -> ())
      skipped

let print_summary oc reports =
  let total_errors = List.fold_left (fun a r -> a + error_count r) 0 reports in
  let dirty = List.length (List.filter has_errors reports) in
  Printf.fprintf oc "%d kernel(s) linted, %d with errors, %d error(s) total\n"
    (List.length reports) dirty total_errors

(* --- JSON rendering ---------------------------------------------------------- *)

let vec_result_to_json vr =
  let status, extra =
    match vr.vr_outcome with
    | Checked ds ->
        ( (if Diag.count_errors ds = 0 then "ok" else "failed"),
          Printf.sprintf ",\"diagnostics\":%s" (Diag.list_to_json ds) )
    | Skipped reason ->
        ( "skipped",
          Printf.sprintf ",\"reason\":\"%s\"" (Diag.json_escape reason) )
  in
  Printf.sprintf "{\"transform\":\"%s\",\"vf\":%d,\"status\":\"%s\"%s}"
    (transform_to_string vr.vr_transform)
    vr.vr_vf status extra

let report_to_json r =
  Printf.sprintf "{\"kernel\":\"%s\",\"errors\":%d,\"scalar\":%s,\"vector\":[%s]}"
    (Diag.json_escape r.r_kernel)
    (error_count r)
    (Diag.list_to_json r.r_scalar)
    (String.concat "," (List.map vec_result_to_json r.r_vector))

let reports_to_json rs =
  "[" ^ String.concat "," (List.map report_to_json rs) ^ "]"
