(** Linear-congruence domain (Granger): sets of integers m*Z + r.  [m = 0]
    is the constant r, [m = 1] is top; for m > 1 the set is the residue
    class r mod m.  Drives the aligned/unaligned classification of affine
    subscripts per vector factor. *)

type t = private { m : int; r : int }

(** Normalizing constructor: m is taken absolute, r reduced into [0, m). *)
val make : int -> int -> t

val const : int -> t
val top : t
val is_top : t -> bool
val is_const : t -> bool
val join : t -> t -> t
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_const : int -> t -> t
val contains : t -> int -> bool
val equal : t -> t -> bool

(** [residue_mod c ~k] is the single residue class modulo [k] containing all
    of [c], when one exists (k | m, or [c] constant). *)
val residue_mod : t -> k:int -> int option

val to_string : t -> string
