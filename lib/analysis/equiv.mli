(** Translation validation: per-iteration-group memory-access multisets and
    reduction sets of a transformed kernel must match the scalar original.

    Loads tolerate the two legitimate deviations (invariant-load collapse,
    demand-driven drops of dead code); stores and reductions must match
    exactly. *)

open Vir

(** Memory-access multiset comparison for a vectorized kernel (one vector
    iteration vs [vf] scalar iterations). *)
val memory_diags : Vvect.Vinstr.vkernel -> Diag.t list

(** Reduction-set preservation for a vectorized kernel. *)
val reduction_diags : Vvect.Vinstr.vkernel -> Diag.t list

(** Both checks. *)
val vkernel_diags : Vvect.Vinstr.vkernel -> Diag.t list

(** Exact multiset/reduction/step comparison of an unrolled kernel against
    [uf] iterations of the original. *)
val unrolled_diags : orig:Kernel.t -> uf:int -> Kernel.t -> Diag.t list
