(** Translation validation: per-iteration-group memory-access multisets and
    reduction sets of a transformed kernel must match the scalar original.

    Loads tolerate the two legitimate deviations (invariant-load collapse,
    demand-driven drops of dead code); stores and reductions must match
    exactly. *)

open Vir

(** Memory-access multiset comparison for a vectorized kernel (one vector
    iteration vs [vf] scalar iterations). *)
val memory_diags : Vvect.Vinstr.vkernel -> Diag.t list

(** Reduction-set preservation for a vectorized kernel. *)
val reduction_diags : Vvect.Vinstr.vkernel -> Diag.t list

(** Both checks. *)
val vkernel_diags : Vvect.Vinstr.vkernel -> Diag.t list

(** Exact multiset/reduction/step comparison of an unrolled kernel against
    [uf] iterations of the original. *)
val unrolled_diags : orig:Kernel.t -> uf:int -> Kernel.t -> Diag.t list

(** Exact float equality with NaN equal to NaN (the comparison the semantic
    check uses: the optimizer never reassociates, so values match bitwise
    up to [=]'s 0/-0 identification). *)
val float_eq : float -> float -> bool

(** Problem sizes [semantic_diags] interprets at by default. *)
val semantic_sizes : int list

(** Run both kernels in the deterministic default environment and compare
    every array element and reduction value; an [Error] diagnostic per
    first mismatch.  A kernel that traps in the original form is skipped
    (no reference behaviour); a transform that *introduces* a trap is an
    error.  Runs execute on [backend] (default [Vexec.Backend.default ()]);
    all backends share reference semantics. *)
val semantic_diags :
  ?backend:Vexec.Backend.t -> ?sizes:int list -> pass:string ->
  orig:Kernel.t -> Kernel.t -> Diag.t list
