(** Effect & ownership analysis.

    Per-kernel may-read/may-write summaries per array — the effect
    license the runtime's buffer-ownership discipline consumes
    ([Vexec.Effects]) — refined with affine flat-index regions from the
    abstract interpreter and the relational domain's parametric
    in-bounds verdicts.  [crosscheck] proves the summary stable under
    every LLV/SLP/unroll x VF transform: the transformed kernel's
    effects must be subsumed statically, and (for oracle-legal
    configurations) every access observed through the interpreter's
    trace hook must hit a licensed (array, direction) inside its static
    region. *)

open Vir

type region = {
  r_array : string;
  r_write : bool;
  r_range : Interval.t;  (** flat-index interval at the analysis size *)
}

type summary = {
  e_kernel : Kernel.t;
  e_n : int;  (** problem size the regions were computed at *)
  e_license : Vexec.Effects.t;
  e_regions : region list;  (** sorted by (array, write) *)
  e_rel_safe : int;  (** accesses proved in-bounds parametrically *)
  e_rel_total : int;
}

(** Per-(array, direction) joined flat-index regions at size [n]. *)
val regions : n:int -> Kernel.t -> region list

val analyze : ?n:int -> Kernel.t -> summary

(** Registry-order parallel map of {!analyze}. *)
val analyze_kernels : ?n:int -> Kernel.t list -> summary list

val ownership : summary -> string -> Vinterp.Env.ownership
val region : summary -> array:string -> write:bool -> region option

(** Effect summary of a vectorized kernel's wide body (the scalar
    epilogue's effects are the source summary by construction). *)
val vkernel_effects : Vvect.Vinstr.vkernel -> Vexec.Effects.t

(** {2 The cross-check} *)

type verdict =
  | Stable
  | Escape of string  (** transformed effects escape the source summary *)
  | Inapplicable of string

type config = {
  c_kernel : string;
  c_transform : Driver.transform;
  c_vf : int;
  c_legal : bool;
  c_verdict : verdict;
}

(** Problem sizes of the trace leg: {!Equiv.semantic_sizes}. *)
val trace_sizes : int list

val check_config :
  ?sizes:int list -> Kernel.t -> Driver.transform -> vf:int ->
  bool * verdict

val default_vfs : int list
val crosscheck_kernel : ?sizes:int list -> ?vfs:int list -> Kernel.t -> config list
val crosscheck : ?sizes:int list -> ?vfs:int list -> Kernel.t list -> config list

type stats = { st_stable : int; st_escape : int; st_inapplicable : int }

val stats : config list -> stats

(** Of the applicable configurations, the fraction whose transformed
    effects stay inside the source summary.  Soundness demands 1.0. *)
val precision : stats -> float

val sound : config list -> bool
val failures : config list -> config list
val config_to_string : config -> string

(** {2 Rendering} (byte-stable across worker counts) *)

val summary_to_json : summary -> string
val summaries_to_json : summary list -> string
val print_summary : out_channel -> summary -> unit
