(** Interval domain over IEEE doubles: one lattice for both interpreter value
    classes (floats directly, integers through their float embedding).
    Transfer functions are sound w.r.t. [Vinterp.Interp]'s concrete
    semantics: corner evaluation with round-to-nearest monotone ops for
    floats, outward rounding plus a 63-bit overflow guard for integers. *)

type t = private { lo : float; hi : float }

val top : t
val is_top : t -> bool

(** Normalizing constructor: NaN bounds widen to the matching infinity,
    inverted bounds collapse to [top]. *)
val make : float -> float -> t

val const : float -> t
val of_int : int -> t
val of_ints : int -> int -> t

(** The abstraction of a boolean: \[0, 1\] with false = 0, true = 1. *)
val bool_range : t

val is_const : t -> bool
val is_bounded : t -> bool

(** NaN is contained only in [top] (only ops that return [top] can produce
    it). *)
val contains : t -> float -> bool

val contains_int : t -> int -> bool
val equal : t -> t -> bool
val join : t -> t -> t

(** Classic widening: any bound that grew versus [prev] jumps to infinity. *)
val widen : prev:t -> next:t -> t

(** Float transfer functions (IEEE round-to-nearest, like the interpreter). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val abs_ : t -> t
val sqrt_ : t -> t
val fma : t -> t -> t -> t

(** Integer transfer functions (modelling OCaml's native int ops). *)

val add_int : t -> t -> t
val sub_int : t -> t -> t
val mul_int : t -> t -> t

(** Truncation toward zero ([int_of_float]). *)
val trunc : t -> t

val div_int : t -> t -> t
val rem_int : t -> t -> t
val lnot_int : t -> t
val land_int : t -> t -> t
val lor_int : t -> t -> t
val lxor_int : t -> t -> t
val shl_int : t -> t -> t
val shr_int : t -> t -> t
val to_string : t -> string
