(* SSA-based scalar optimizer.

   The cost models count instructions, and the paper's fit assumes the
   counts of a *compiled* body — i.e. after the scalar cleanup every real
   compiler runs before vectorizing.  This pipeline normalizes a kernel the
   same way, built on the reusable analyses ([Ssa] dominators, [Avail]
   value numbering, [Dataflow] liveness/invariance, [Absint] value ranges):

     constant-fold   reaching constants folded into immediates, integer
                     algebraic identities (x+0, x*1, x&0, shifts by 0, ...)
     gvn             dominator-based global value numbering / CSE,
                     commutative operands canonicalized, loads killed by
                     intervening same-array stores
     licm            loop-invariant code motion: invariant instructions
                     move to a "preheader prefix" at the front of the body
                     (the IR has no preheader block, and the interpreter
                     executes the prefix once per iteration with identical
                     results, so motion — not duplication — is the
                     semantics-preserving encoding of hoisting)
     strength-reduce induction-variable and other integer multiplies by
                     2^k become shifts; div/rem by 2^k become shift/mask
                     when the operand is provably non-negative (Absint)
     dse             stores overwritten by a later same-address store with
                     no intervening same-array load are removed
     dce             values that never reach a store or reduction are
                     removed

   Every pass is value-preserving bit for bit (no float reassociation, no
   speculative rewrites), which [validate] checks against the reference
   interpreter via [Equiv.semantic_diags], and no pass ever increases the
   body length.  This subsumes the old [Vir.Simplify] (fold/cse/dce), which
   it replaces. *)

open Vir

type pass = {
  p_name : string;
  p_descr : string;
  p_run : Kernel.t -> Kernel.t;
}

(* --- rebuild: the SSA-preserving body surgery all passes share ------------- *)

(* Rebuild a body from a keep-mask and a position-aliasing map, fixing up
   every register reference (reduction sources included). *)
let rebuild (k : Kernel.t) ~keep ~replace =
  let body = Array.of_list k.Kernel.body in
  let n = Array.length body in
  let new_pos = Array.make n (-1) in
  let out = ref [] in
  let count = ref 0 in
  for pos = 0 to n - 1 do
    match replace pos with
    | Some target ->
        (* This position's value is an alias of [target]. *)
        new_pos.(pos) <- new_pos.(target)
    | None ->
        if keep pos then begin
          let remap = function
            | Instr.Reg r when r >= 0 && r < n && new_pos.(r) >= 0 ->
                Instr.Reg new_pos.(r)
            | op -> op
          in
          out := Instr.map_operands remap body.(pos) :: !out;
          new_pos.(pos) <- !count;
          incr count
        end
  done;
  let remap_red = function
    | Instr.Reg r when r >= 0 && r < n && new_pos.(r) >= 0 ->
        Instr.Reg new_pos.(r)
    | op -> op
  in
  {
    k with
    Kernel.body = List.rev !out;
    reductions =
      List.map
        (fun (r : Kernel.reduction) -> { r with red_src = remap_red r.red_src })
        k.reductions;
  }

(* Reorder the body by [order] (a permutation of positions), remapping
   registers.  Legal whenever the order keeps every definition before its
   uses. *)
let permute (k : Kernel.t) order =
  let body = Array.of_list k.Kernel.body in
  let n = Array.length body in
  let new_pos = Array.make n (-1) in
  List.iteri (fun i pos -> new_pos.(pos) <- i) order;
  let remap = function
    | Instr.Reg r when r >= 0 && r < n && new_pos.(r) >= 0 ->
        Instr.Reg new_pos.(r)
    | op -> op
  in
  {
    k with
    Kernel.body =
      List.map (fun pos -> Instr.map_operands remap body.(pos)) order;
    reductions =
      List.map
        (fun (r : Kernel.reduction) -> { r with red_src = remap r.red_src })
        k.reductions;
  }

(* --- dead-code elimination ------------------------------------------------- *)

let dce_run (k : Kernel.t) =
  let used = Kernel.used_regs k in
  let body = Array.of_list k.Kernel.body in
  rebuild k
    ~keep:(fun pos -> Instr.is_store body.(pos) || Hashtbl.mem used pos)
    ~replace:(fun _ -> None)

(* --- constant folding + integer algebraic identities ----------------------- *)

(* Only rewrites whose result is bit-identical under the interpreter are
   applied: float immediates fold (the fold performs the very operation the
   interpreter would), but float identities like x*1.0 are left alone — they
   can flip a NaN payload or a signed zero, and the validator compares
   values exactly. *)
let identity (instr : Instr.t) =
  match instr with
  | Instr.Bin { ty; op; a; b } when Types.is_int ty -> (
      match (op, a, b) with
      | Op.Add, x, Instr.Imm_int 0
      | Op.Add, Instr.Imm_int 0, x
      | Op.Sub, x, Instr.Imm_int 0
      | Op.Mul, x, Instr.Imm_int 1
      | Op.Mul, Instr.Imm_int 1, x
      | Op.Div, x, Instr.Imm_int 1
      | Op.Or, x, Instr.Imm_int 0
      | Op.Or, Instr.Imm_int 0, x
      | Op.Xor, x, Instr.Imm_int 0
      | Op.Xor, Instr.Imm_int 0, x
      | Op.Shl, x, Instr.Imm_int 0
      | Op.Shr, x, Instr.Imm_int 0 ->
          Some x
      | Op.Mul, _, Instr.Imm_int 0
      | Op.Mul, Instr.Imm_int 0, _
      | Op.And, _, Instr.Imm_int 0
      | Op.And, Instr.Imm_int 0, _ ->
          Some (Instr.Imm_int 0)
      | Op.Rem, _, Instr.Imm_int 1 -> Some (Instr.Imm_int 0)
      | _ -> None)
  | Instr.Cast { src_ty; dst_ty; a } when Types.equal_scalar src_ty dst_ty ->
      Some a
  | _ -> None

let fold_run (k : Kernel.t) =
  let df = Dataflow.analyze k in
  let n = Array.length df.Dataflow.body in
  let imm_of = function
    | Dataflow.Cint i -> Instr.Imm_int i
    | Dataflow.Cfloat f -> Instr.Imm_float f
  in
  let const_subst = function
    | Instr.Reg r when r >= 0 && r < n -> (
        match df.Dataflow.consts.(r) with
        | Some c -> imm_of c
        | None -> Instr.Reg r)
    | op -> op
  in
  let arr =
    Array.of_list (List.map (Instr.map_operands const_subst) k.Kernel.body)
  in
  let alias = Array.make n None in
  let resolve = function
    | Instr.Reg r when r >= 0 && r < n -> (
        match alias.(r) with Some o -> o | None -> Instr.Reg r)
    | op -> op
  in
  Array.iteri
    (fun pos instr ->
      let instr = Instr.map_operands resolve instr in
      arr.(pos) <- instr;
      match identity instr with
      | Some x -> alias.(pos) <- Some x  (* already resolved *)
      | None -> ())
    arr;
  let k' =
    {
      k with
      Kernel.body = Array.to_list arr;
      reductions =
        List.map
          (fun (r : Kernel.reduction) ->
            { r with red_src = resolve (const_subst r.red_src) })
          k.reductions;
    }
  in
  dce_run k'

(* --- dominator-based GVN / CSE --------------------------------------------- *)

let gvn_run (k : Kernel.t) =
  let av = Avail.analyze k in
  rebuild k
    ~keep:(fun _ -> true)
    ~replace:(fun pos ->
      let l = Avail.leader_of av pos in
      if l <> pos then Some l else None)

(* --- loop-invariant code motion -------------------------------------------- *)

(* Stable partition: invariant instructions first (the preheader prefix),
   everything else after, each side in original order.  Invariant
   instructions only read invariant operands — all of which move with them —
   and invariant loads read arrays no body store writes, so crossing stores
   is safe; stores themselves are never invariant and never move relative
   to each other or to same-array loads. *)
let licm_run (k : Kernel.t) =
  let df = Dataflow.analyze k in
  let n = Array.length df.Dataflow.body in
  let inv = ref [] and rest = ref [] in
  for pos = n - 1 downto 0 do
    if df.Dataflow.invariant.(pos) then inv := pos :: !inv
    else rest := pos :: !rest
  done;
  if !inv = [] then k else permute k (!inv @ !rest)

(* Number of body instructions in the hoistable (invariant, non-store)
   class; after [licm_run] these sit in a prefix of the body. *)
let hoisted_count (k : Kernel.t) =
  let df = Dataflow.analyze k in
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
    df.Dataflow.invariant

let hoisted_fraction (k : Kernel.t) =
  let len = List.length k.Kernel.body in
  if len = 0 then 0.0 else float_of_int (hoisted_count k) /. float_of_int len

(* --- strength reduction ---------------------------------------------------- *)

let is_pow2 c = c > 1 && c land (c - 1) = 0

let log2 c =
  let rec go c acc = if c <= 1 then acc else go (c lsr 1) (acc + 1) in
  go c 0

(* x*2^k == x lsl k holds for every native int (both wrap the 63-bit
   representation identically), so the
   multiply rewrite is unconditional.  Truncating division and remainder
   only agree with shift/mask on non-negative operands ([asr] rounds toward
   -inf, [/] toward 0), so those need a proof: the abstract value range of
   a register, the loop bounds of an index, or the sign of an immediate. *)
let strength_run (k : Kernel.t) =
  let summary = lazy (Absint.analyze ~n:Absint.default_n k) in
  let nonneg = function
    | Instr.Imm_int i -> i >= 0
    | Instr.Reg r ->
        let s = Lazy.force summary in
        r >= 0
        && r < Array.length s.Absint.s_regs
        && s.Absint.s_regs.(r).Interval.lo >= 0.0
    | Instr.Index v -> (
        match
          List.find_opt (fun (l : Kernel.loop) -> String.equal l.var v)
            k.Kernel.loops
        with
        | Some l -> l.start >= 0 && l.step > 0
        | None -> false)
    | Instr.Param _ | Instr.Imm_float _ -> false
  in
  let rw (instr : Instr.t) =
    match instr with
    | Instr.Bin { ty; op = Op.Mul; a; b } when Types.is_int ty -> (
        match (a, b) with
        | x, Instr.Imm_int c when is_pow2 c ->
            Instr.Bin { ty; op = Op.Shl; a = x; b = Instr.Imm_int (log2 c) }
        | Instr.Imm_int c, x when is_pow2 c ->
            Instr.Bin { ty; op = Op.Shl; a = x; b = Instr.Imm_int (log2 c) }
        | _ -> instr)
    | Instr.Bin { ty; op = Op.Div; a; b = Instr.Imm_int c }
      when Types.is_int ty && is_pow2 c && nonneg a ->
        Instr.Bin { ty; op = Op.Shr; a; b = Instr.Imm_int (log2 c) }
    | Instr.Bin { ty; op = Op.Rem; a; b = Instr.Imm_int c }
      when Types.is_int ty && is_pow2 c && nonneg a ->
        Instr.Bin { ty; op = Op.And; a; b = Instr.Imm_int (c - 1) }
    | _ -> instr
  in
  { k with Kernel.body = List.map rw k.Kernel.body }

(* --- dead-store elimination ------------------------------------------------ *)

(* A store is dead when a later store writes the syntactically identical
   address and no load of that array can observe the value in between.
   Same-array stores to *different* addresses neither kill nor observe, so
   the scan continues past them. *)
let dead_stores (k : Kernel.t) =
  let body = Array.of_list k.Kernel.body in
  let n = Array.length body in
  let out = ref [] in
  for p = n - 1 downto 0 do
    match body.(p) with
    | Instr.Store { addr; _ } ->
        let arr = Instr.addr_array addr in
        let rec scan q =
          if q >= n then ()
          else
            match body.(q) with
            | Instr.Load { addr = a2; _ }
              when String.equal (Instr.addr_array a2) arr ->
                ()
            | Instr.Store { addr = a2; _ }
              when String.equal (Instr.addr_array a2) arr ->
                if Instr.equal_addr addr a2 then out := p :: !out
                else scan (q + 1)
            | _ -> scan (q + 1)
        in
        scan (p + 1)
    | _ -> ()
  done;
  !out

let dse_run (k : Kernel.t) =
  match dead_stores k with
  | [] -> k
  | dead ->
      let dead_tbl = Hashtbl.create 4 in
      List.iter (fun p -> Hashtbl.replace dead_tbl p ()) dead;
      rebuild k
        ~keep:(fun pos -> not (Hashtbl.mem dead_tbl pos))
        ~replace:(fun _ -> None)

(* --- the pipeline ----------------------------------------------------------- *)

let fold_pass =
  { p_name = "constant-fold";
    p_descr = "reaching constants to immediates + integer identities";
    p_run = fold_run }

let gvn_pass =
  { p_name = "gvn";
    p_descr = "dominator-based value numbering (CSE incl. loads)";
    p_run = gvn_run }

let licm_pass =
  { p_name = "licm";
    p_descr = "hoist loop-invariant instructions to the preheader prefix";
    p_run = licm_run }

let strength_pass =
  { p_name = "strength-reduce";
    p_descr = "power-of-two multiplies to shifts, guarded div/rem to shift/mask";
    p_run = strength_run }

let dse_pass =
  { p_name = "dse";
    p_descr = "remove stores overwritten before any load";
    p_run = dse_run }

let dce_pass =
  { p_name = "dce";
    p_descr = "remove values that reach no store or reduction";
    p_run = dce_run }

let pipeline =
  [ fold_pass; gvn_pass; licm_pass; strength_pass; dse_pass; dce_pass ]

let find_pass name =
  List.find_opt (fun p -> String.equal p.p_name name) pipeline

(* --- instruction-class mix -------------------------------------------------- *)

(* Same class vocabulary as the feature extractor (which lives above this
   library and cannot be used here): memory ops split by access pattern,
   ALU ops by type and unit. *)
let class_names =
  [ "int_alu"; "int_mul"; "int_div"; "fp_add"; "fp_mul"; "fp_fma"; "fp_div";
    "fp_sqrt"; "cmp"; "select"; "cast"; "load_unit"; "load_inv";
    "load_strided"; "load_gather"; "store_unit"; "store_strided";
    "store_scatter"; "reduction" ]

let class_of (k : Kernel.t) (i : Instr.t) =
  match i with
  | Instr.Load { addr; _ } -> (
      match Kernel.access_stride k addr with
      | Kernel.Sconst 0 -> "load_inv"
      | Kernel.Sconst c when abs c = 1 -> "load_unit"
      | Kernel.Sconst _ | Kernel.Srow _ -> "load_strided"
      | Kernel.Sindirect -> "load_gather")
  | Instr.Store { addr; _ } -> (
      match Kernel.access_stride k addr with
      | Kernel.Sconst c when abs c <= 1 -> "store_unit"
      | Kernel.Sconst _ | Kernel.Srow _ -> "store_strided"
      | Kernel.Sindirect -> "store_scatter")
  | Instr.Bin { ty; op; _ } -> (
      let fp = Types.is_float ty in
      match op with
      | Op.Add | Op.Sub | Op.Min | Op.Max -> if fp then "fp_add" else "int_alu"
      | Op.Mul -> if fp then "fp_mul" else "int_mul"
      | Op.Div | Op.Rem -> if fp then "fp_div" else "int_div"
      | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr -> "int_alu")
  | Instr.Una { ty; op; _ } -> (
      match op with
      | Op.Neg | Op.Abs -> if Types.is_float ty then "fp_add" else "int_alu"
      | Op.Sqrt -> "fp_sqrt"
      | Op.Not -> "int_alu")
  | Instr.Fma _ -> "fp_fma"
  | Instr.Cmp _ -> "cmp"
  | Instr.Select _ -> "select"
  | Instr.Cast _ -> "cast"

(* Class -> count, every class present (zeros included) in [class_names]
   order, so renderings are stable. *)
let class_mix (k : Kernel.t) =
  let tbl = Hashtbl.create 16 in
  let bump c = Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)) in
  List.iter (fun i -> bump (class_of k i)) k.Kernel.body;
  List.iter (fun (_ : Kernel.reduction) -> bump "reduction") k.Kernel.reductions;
  List.map
    (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    class_names

(* --- driver ------------------------------------------------------------------ *)

type step = { st_pass : string; st_before : int; st_after : int }

type report = {
  rp_name : string;
  rp_original : Kernel.t;
  rp_normalized : Kernel.t;
  rp_steps : step list;
  rp_hoisted : int;
}

let run (k : Kernel.t) =
  let steps = ref [] in
  let final =
    List.fold_left
      (fun cur p ->
        let next = p.p_run cur in
        steps :=
          { st_pass = p.p_name;
            st_before = List.length cur.Kernel.body;
            st_after = List.length next.Kernel.body }
          :: !steps;
        next)
      k pipeline
  in
  { rp_name = k.Kernel.name;
    rp_original = k;
    rp_normalized = final;
    rp_steps = List.rev !steps;
    rp_hoisted = hoisted_count final }

let normalize (k : Kernel.t) = (run k).rp_normalized

(* --- per-pass validation ----------------------------------------------------- *)

(* Each pass is checked in sequence against the kernel it actually received
   (so a bug in pass 3 is attributed to pass 3, not smeared over the
   pipeline), plus the monotonicity guarantee that no pass grows the
   body. *)
let validate ?sizes (k : Kernel.t) =
  let diags = ref [] in
  let _final =
    List.fold_left
      (fun cur p ->
        let next = p.p_run cur in
        let pass = "opt-" ^ p.p_name in
        diags := Equiv.semantic_diags ?sizes ~pass ~orig:cur next @ !diags;
        let b = List.length cur.Kernel.body
        and a = List.length next.Kernel.body in
        if a > b then
          diags :=
            Diag.error ~pass ~kernel:k.Kernel.name
              "pass grew the body from %d to %d instructions" b a
            :: !diags;
        next)
      k pipeline
  in
  Diag.canonical !diags

(* --- rendering ---------------------------------------------------------------- *)

let mix_to_string mix =
  String.concat " "
    (List.filter_map
       (fun (c, n) -> if n = 0 then None else Some (Printf.sprintf "%s=%d" c n))
       mix)

let print_report oc r =
  Printf.fprintf oc "%s: %d -> %d instruction(s), %d hoistable\n" r.rp_name
    (List.length r.rp_original.Kernel.body)
    (List.length r.rp_normalized.Kernel.body)
    r.rp_hoisted;
  List.iter
    (fun s ->
      Printf.fprintf oc "  %-16s %3d -> %3d%s\n" s.st_pass s.st_before
        s.st_after
        (if s.st_after < s.st_before then
           Printf.sprintf "  (-%d)" (s.st_before - s.st_after)
         else ""))
    r.rp_steps;
  Printf.fprintf oc "  before: %s\n" (mix_to_string (class_mix r.rp_original));
  Printf.fprintf oc "  after:  %s\n" (mix_to_string (class_mix r.rp_normalized))

let mix_to_json mix =
  "{"
  ^ String.concat ","
      (List.map (fun (c, n) -> Printf.sprintf "\"%s\":%d" c n) mix)
  ^ "}"

let report_to_json r =
  let steps =
    String.concat ","
      (List.map
         (fun s ->
           Printf.sprintf "{\"pass\":\"%s\",\"before\":%d,\"after\":%d}"
             s.st_pass s.st_before s.st_after)
         r.rp_steps)
  in
  Printf.sprintf
    "{\"kernel\":\"%s\",\"before\":%d,\"after\":%d,\"hoisted\":%d,\"steps\":[%s],\"mix_before\":%s,\"mix_after\":%s}"
    (Diag.json_escape r.rp_name)
    (List.length r.rp_original.Kernel.body)
    (List.length r.rp_normalized.Kernel.body)
    r.rp_hoisted steps
    (mix_to_json (class_mix r.rp_original))
    (mix_to_json (class_mix r.rp_normalized))

let reports_to_json rs =
  "[" ^ String.concat "," (List.map report_to_json rs) ^ "]"

(* Kernels are independent; the registry sweep fans out over the shared
   domain pool (order-preserving, so renderings stay byte-stable whatever
   the worker count). *)
let run_all ks = Vpar.Pool.parallel_map run ks
let validate_all ?sizes ks = Vpar.Pool.parallel_map (validate ?sizes) ks
