(** Relational bounds domain: symbolic affine constraints over loop
    variables, runtime parameters, and subscripts, proved parametrically in
    the problem size.

    Unlike {!Vir.Bounds} (exact evaluation at witness sizes) and
    {!Vexec.Closure.affine_safe} (exact intervals for one concrete
    binding), a [Safe] verdict here holds for {e every} n >= 4 and every
    parameter assignment inside the environment contracts
    ({!Vir.Bounds.param_contract}), which is what licenses the guard-free
    execution path once per kernel instead of once per binding.  Indirect
    subscripts are bounded through the environment's value contracts (index
    arrays hold a permutation of [0, n); unwritten integer data arrays hold
    values in [1, 4]) by symbolic evaluation of the index operand.

    The domain only ever answers [Safe] or [Unknown]; refutation (with a
    concrete witness) stays with {!Vir.Bounds} and is overlaid by
    {!Cert}. *)

type verdict =
  | Safe of string  (** proved; the payload is the proving constraint *)
  | Unknown of string  (** not provable here; the payload says why *)

type access_report = {
  ar_id : int;  (** access id: position among memory instructions, in body
                    order — the same numbering [Vexec.Program.lower]
                    assigns to access descriptors *)
  ar_pos : int;  (** body (SSA) position of the load/store *)
  ar_array : string;
  ar_store : bool;
  ar_indirect : bool;
  ar_verdict : verdict;
}

val analyze : Vir.Kernel.t -> access_report list
(** One report per memory instruction, in body order.  Never raises on
    well-formed kernels; anything outside the domain's fragment (float
    arithmetic feeding an index, non-positive steps over possibly nonempty
    ranges, multiplication of two non-constant values, ...) degrades to
    [Unknown], never to a wrong [Safe]. *)
