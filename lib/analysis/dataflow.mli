(** Dataflow facts over the SSA-by-position scalar body: def-use chains,
    liveness towards stores/reductions, reaching constants and
    innermost-loop invariance.  Lint passes consume these facts. *)

open Vir

type const = Cint of int | Cfloat of float

type t = {
  kernel : Kernel.t;
  body : Instr.t array;
  users : int list array;
  reduction_uses : int array;
  live : bool array;
  consts : const option array;
  invariant : bool array;
}

(** Total number of reads of register [r] (body operands + reductions). *)
val use_count : t -> int -> int

val analyze : Kernel.t -> t

(** Whether an operand denotes the same value on every innermost
    iteration. *)
val operand_invariant : t -> Instr.operand -> bool

(** Whether an address denotes the same location on every innermost
    iteration. *)
val addr_invariant : t -> Instr.addr -> bool
