(** SSA-based scalar optimizer: the normalization pipeline the cost model's
    instruction counts are taken after.  Passes are built on [Ssa]
    (dominators), [Avail] (value numbering), [Dataflow]
    (liveness/invariance) and [Absint] (value ranges); each is
    value-preserving bit for bit and never grows the body, which
    [validate] checks per pass against the reference interpreter.
    Replaces the old [Vir.Simplify]. *)

open Vir

type pass = {
  p_name : string;
  p_descr : string;
  p_run : Kernel.t -> Kernel.t;
}

(** SSA-preserving body surgery shared by the passes: drop positions failing
    [keep], alias positions mapped by [replace], remap all registers. *)
val rebuild :
  Kernel.t -> keep:(int -> bool) -> replace:(int -> int option) -> Kernel.t

(** Reorder the body by a permutation of positions, remapping registers. *)
val permute : Kernel.t -> int list -> Kernel.t

val fold_pass : pass  (** reaching constants + integer algebraic identities *)

val gvn_pass : pass  (** dominator-based value numbering / CSE *)

val licm_pass : pass
(** hoist invariant instructions to the preheader prefix (code motion) *)

val strength_pass : pass
(** power-of-two multiplies to shifts; div/rem to shift/mask when the
    operand is provably non-negative *)

val dse_pass : pass  (** remove stores overwritten before any load *)

val dce_pass : pass  (** remove values reaching no store or reduction *)

val pipeline : pass list

val find_pass : string -> pass option

(** Positions of stores overwritten by a later identical-address store with
    no intervening same-array load (what [dse_pass] removes and the
    [dead-store] lint reports). *)
val dead_stores : Kernel.t -> int list

(** Number of hoistable (innermost-loop-invariant, non-store) body
    instructions; after LICM these form a prefix of the body. *)
val hoisted_count : Kernel.t -> int

(** [hoisted_count] over the body length (0 on empty bodies). *)
val hoisted_fraction : Kernel.t -> float

(** Instruction-class vocabulary of [class_mix], fixed order. *)
val class_names : string list

val class_of : Kernel.t -> Instr.t -> string

(** Class -> count in [class_names] order, zeros included. *)
val class_mix : Kernel.t -> (string * int) list

type step = { st_pass : string; st_before : int; st_after : int }

type report = {
  rp_name : string;
  rp_original : Kernel.t;
  rp_normalized : Kernel.t;
  rp_steps : step list;
  rp_hoisted : int;
}

(** Run the full pipeline, recording the per-pass body-length deltas. *)
val run : Kernel.t -> report

(** [(run k).rp_normalized]. *)
val normalize : Kernel.t -> Kernel.t

(** Check every pass in sequence against the reference interpreter
    ([Equiv.semantic_diags]) plus the no-growth guarantee; canonicalized
    diagnostics, empty means validated. *)
val validate : ?sizes:int list -> Kernel.t -> Diag.t list

val print_report : out_channel -> report -> unit
val report_to_json : report -> string
val reports_to_json : report list -> string

(** Registry-wide sweeps over the shared domain pool (order-preserving). *)
val run_all : Kernel.t list -> report list

val validate_all : ?sizes:int list -> Kernel.t list -> Diag.t list list
