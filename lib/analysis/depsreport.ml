(* Dependence reporting and the legality-vs-validator cross-check.

   [summarize] renders the nest-wide dependence graph, idiom tags and the
   legality oracle's verdict space for one kernel — the payload behind
   [vecmodel deps].  [crosscheck] is the empirical soundness gate: for every
   (transform, VF) configuration the oracle rules on, force the transform
   (bypassing the oracle) and ask the translation validator *and* the
   reference interpreter whether the result preserves semantics.  An
   oracle-legal configuration the validator rejects is a soundness bug and
   fails the gate; an oracle-illegal configuration the validator accepts is
   mere conservatism and only lowers recall. *)

open Vir
module G = Vdeps.Depgraph
module S = Vdeps.Subscript
module L = Vdeps.Legality
module I = Vinterp.Interp

type summary = {
  s_kernel : string;
  s_graph : G.t;
  s_legality : L.t;
}

let summarize ?vfs (k : Kernel.t) : summary =
  {
    s_kernel = k.Kernel.name;
    s_graph = G.build k;
    s_legality = L.summarize ?vfs k;
  }

(* Kernels are independent; parallel_map keeps registry order. *)
let summarize_kernels ?vfs ks = Vpar.Pool.parallel_map (summarize ?vfs) ks

(* --- JSON rendering ---------------------------------------------------------- *)

(* Edges come out of [Depgraph.build] sorted and deduplicated, so the JSON
   is byte-stable whatever the worker count. *)

let edge_to_json (e : G.edge) =
  let dist =
    e.G.e_dist |> Array.to_list
    |> List.map (function Some d -> string_of_int d | None -> "null")
    |> String.concat ","
  in
  Printf.sprintf
    "{\"array\":\"%s\",\"src\":%d,\"snk\":%d,\"kind\":\"%s\",\"dirs\":\"%s\",\
     \"dist\":[%s],\"carried\":\"%s\",\"assumed\":%b}"
    (Diag.json_escape e.G.e_array)
    e.G.e_src e.G.e_snk
    (Vdeps.Dependence.kind_to_string e.G.e_kind)
    (S.dirs_to_string e.G.e_dirs)
    dist
    (G.carried_to_string e.G.e_carried)
    e.G.e_assumed

let vf_flags_to_json flags =
  flags
  |> List.map (fun (vf, ok) -> Printf.sprintf "{\"vf\":%d,\"legal\":%b}" vf ok)
  |> String.concat ","

let summary_to_json (s : summary) =
  let g = s.s_graph in
  let l = s.s_legality in
  let counts =
    G.carried_counts g |> Array.to_list |> List.map string_of_int
    |> String.concat ","
  in
  let min_dist =
    match G.min_carried_distance g with
    | Some d -> string_of_int d
    | None -> "null"
  in
  let vf_limit =
    match l.L.l_vf_limit with
    | Vdeps.Dependence.Unlimited -> "null"
    | Vdeps.Dependence.Max_vf m -> string_of_int m
  in
  let idioms =
    l.L.l_idioms
    |> List.map (fun i ->
           Printf.sprintf "\"%s\"" (Diag.json_escape (Vdeps.Idiom.to_string i)))
    |> String.concat ","
  in
  Printf.sprintf
    "{\"kernel\":\"%s\",\"depth\":%d,\"loop_vars\":[%s],\"edges\":[%s],\
     \"carried_counts\":[%s],\"min_carried_distance\":%s,\"vf_limit\":%s,\
     \"assumed\":%b,\"idioms\":[%s],\"llv\":[%s],\"slp\":[%s],\"unroll\":[%s],\
     \"interchange\":\"%s\"}"
    (Diag.json_escape s.s_kernel)
    g.G.g_depth
    (String.concat ","
       (List.map (fun v -> Printf.sprintf "\"%s\"" (Diag.json_escape v))
          g.G.g_loop_vars))
    (String.concat "," (List.map edge_to_json g.G.g_edges))
    counts min_dist vf_limit l.L.l_assumed idioms
    (vf_flags_to_json l.L.l_llv)
    (vf_flags_to_json l.L.l_slp)
    (vf_flags_to_json l.L.l_unroll)
    (Diag.json_escape (L.ix_verdict_to_string l.L.l_interchange))

let summaries_to_json ss =
  "[" ^ String.concat "," (List.map summary_to_json ss) ^ "]"

(* --- human rendering --------------------------------------------------------- *)

let print_summary oc (s : summary) =
  let g = s.s_graph in
  Printf.fprintf oc "%s: depth %d (%s), %d dependence edge(s)\n" s.s_kernel
    g.G.g_depth
    (String.concat "," g.G.g_loop_vars)
    (List.length g.G.g_edges);
  List.iter
    (fun e -> Printf.fprintf oc "  %s\n" (Format.asprintf "%a" G.pp_edge e))
    g.G.g_edges;
  (match s.s_legality.L.l_idioms with
  | [] -> ()
  | idioms ->
      Printf.fprintf oc "  idioms: %s\n"
        (String.concat ", " (List.map Vdeps.Idiom.to_string idioms)));
  Printf.fprintf oc "%s\n"
    (Format.asprintf "%a" L.pp s.s_legality)

(* --- the cross-check ---------------------------------------------------------- *)

type verdict =
  | True_positive  (* oracle legal, validator agrees *)
  | False_positive  (* oracle legal, validator refutes: soundness bug *)
  | False_negative  (* oracle illegal, validator passes: conservatism *)
  | True_negative  (* oracle illegal, validator refutes *)
  | Inapplicable of string  (* transform failed for a non-legality reason *)

type config = {
  c_kernel : string;
  c_transform : Driver.transform;  (* Tllv or Tslp only *)
  c_vf : int;
  c_verdict : verdict;
}

let mem_equal e1 e2 = Vinterp.Env.snapshot e1 = Vinterp.Env.snapshot e2

(* Reductions tolerate reassociation noise (relative 1e-4); NaN equals
   NaN. *)
let red_equal r1 r2 =
  List.length r1 = List.length r2
  && List.for_all2
       (fun (n1, v1) (n2, v2) ->
         String.equal n1 n2
         && (Equiv.float_eq v1 v2
             || abs_float (v1 -. v2)
                <= 1e-4 *. (abs_float v1 +. abs_float v2 +. 1.0)))
       r1 r2

(* The validator: multiset translation validation AND reference-interpreter
   equivalence at every size in [sizes].  The multiset check alone cannot
   see execution-order violations (it compares which locations are
   touched, not in what order), so the interpreter leg is what catches an illegal
   width actually computing wrong values. *)
let validates ?(sizes = Equiv.semantic_sizes) (k : Kernel.t)
    (vk : Vvect.Vinstr.vkernel) : bool =
  Diag.count_errors (Equiv.vkernel_diags vk) = 0
  && List.for_all
       (fun n ->
         match I.run ~n k with
         | exception _ -> true (* no reference behaviour at this size *)
         | rs -> (
             match Vvect.Vexec.run ~n vk with
             | exception _ -> false
             | rv ->
                 mem_equal rs.I.env rv.I.env
                 && red_equal rs.I.reductions rv.I.reductions))
       sizes

let check_config ?sizes (k : Kernel.t) (tr : Driver.transform) ~vf : verdict =
  let legal, forced =
    match tr with
    | Driver.Tllv ->
        ( L.llv_ok k ~vf,
          (match Vvect.Llv.vectorize ~vf ~force:true k with
          | Ok vk -> Ok vk
          | Error e -> Error (Vvect.Llv.error_to_string e)) )
    | Driver.Tslp ->
        ( L.slp_ok k ~vf,
          (match Vvect.Slp.vectorize ~vf ~force:true k with
          | Ok vk -> Ok vk
          | Error e -> Error (Vvect.Slp.error_to_string e)) )
    | Driver.Tunroll -> invalid_arg "check_config: unroll is always legal"
  in
  match forced with
  | Error reason -> Inapplicable reason
  | Ok vk -> (
      let ok = validates ?sizes k vk in
      match (legal, ok) with
      | true, true -> True_positive
      | true, false -> False_positive
      | false, true -> False_negative
      | false, false -> True_negative)

let default_vfs = Driver.default_vfs

let crosscheck_kernel ?sizes ?(vfs = default_vfs) (k : Kernel.t) : config list =
  List.concat_map
    (fun tr ->
      List.map
        (fun vf ->
          {
            c_kernel = k.Kernel.name;
            c_transform = tr;
            c_vf = vf;
            c_verdict = check_config ?sizes k tr ~vf;
          })
        vfs)
    [ Driver.Tllv; Driver.Tslp ]

let crosscheck ?sizes ?vfs ks =
  List.concat (Vpar.Pool.parallel_map (crosscheck_kernel ?sizes ?vfs) ks)

type stats = {
  st_tp : int;
  st_fp : int;
  st_fn : int;
  st_tn : int;
  st_inapplicable : int;
}

let stats configs =
  List.fold_left
    (fun st c ->
      match c.c_verdict with
      | True_positive -> { st with st_tp = st.st_tp + 1 }
      | False_positive -> { st with st_fp = st.st_fp + 1 }
      | False_negative -> { st with st_fn = st.st_fn + 1 }
      | True_negative -> { st with st_tn = st.st_tn + 1 }
      | Inapplicable _ -> { st with st_inapplicable = st.st_inapplicable + 1 })
    { st_tp = 0; st_fp = 0; st_fn = 0; st_tn = 0; st_inapplicable = 0 }
    configs

(* Precision: of the configurations the oracle admits, the fraction the
   validator confirms.  Soundness demands 1.0.  Recall: of the
   configurations that are in fact safe, the fraction the oracle admits —
   a measure of (useful) aggressiveness. *)
let precision st =
  if st.st_tp + st.st_fp = 0 then 1.0
  else float_of_int st.st_tp /. float_of_int (st.st_tp + st.st_fp)

let recall st =
  if st.st_tp + st.st_fn = 0 then 1.0
  else float_of_int st.st_tp /. float_of_int (st.st_tp + st.st_fn)

let sound configs =
  List.for_all (fun c -> c.c_verdict <> False_positive) configs

let failures configs =
  List.filter (fun c -> c.c_verdict = False_positive) configs

let config_to_string c =
  let v =
    match c.c_verdict with
    | True_positive -> "legal, validated"
    | False_positive -> "LEGAL BUT REFUTED"
    | False_negative -> "refused, but safe"
    | True_negative -> "refused, refuted"
    | Inapplicable why -> "inapplicable: " ^ why
  in
  Printf.sprintf "%s %s vf=%d: %s" c.c_kernel
    (Driver.transform_to_string c.c_transform)
    c.c_vf v
