(** Explicit SSA view of a kernel: checks the SSA-by-position invariant of
    the straight-line body, builds the structured loop-nest CFG, and
    computes its dominator tree (Cooper–Harvey–Kennedy over reverse
    postorder).  The optimizer phrases redundancy-elimination legality as
    dominance queries against this structure. *)

open Vir

type node = Entry | Header of int  (** loop index, outermost first *) | Body | Latch of int | Exit

exception Not_ssa of string

type t = {
  kernel : Kernel.t;
  body : Instr.t array;
  nodes : node array;
  succ : int list array;
  pred : int list array;
  rpo : int array;  (** node indices in reverse postorder *)
  idom : int array;  (** immediate dominator per node; entry maps to itself *)
  entry : int;
  block : int;  (** index of the [Body] node *)
}

val node_to_string : node -> string

(** Raises [Not_ssa] when a body or reduction operand reads a register that
    is undefined, defined by a store, or defined later than the use. *)
val check : Kernel.t -> unit

(** Checks SSA form, then builds CFG + dominator tree. *)
val of_kernel : Kernel.t -> t

(** [dominates t a b]: every path from entry to node [b] passes node [a]. *)
val dominates : t -> int -> int -> bool

(** Depth of a node in the dominator tree (entry = 0). *)
val dom_depth : t -> int -> int

(** Dominance between body positions (both live in the single [Body]
    block): true iff [def] textually precedes [use] and both are in
    range. *)
val def_dominates_use : t -> def:int -> use:int -> bool
