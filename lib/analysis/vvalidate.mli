(** Well-formedness of the vector IR: SSA-by-position register discipline,
    scalar/vector width discipline, element-type agreement, lane/copy
    ranges, access-pattern tags — plus translation validation against the
    scalar kernel (see [Equiv]). *)

(** Structural and type checks only. *)
val check : Vvect.Vinstr.vkernel -> Diag.t list

(** [check] plus [Equiv.vkernel_diags] (translation validation runs only
    when the structural checks pass). *)
val errors : Vvect.Vinstr.vkernel -> Diag.t list

val is_valid : Vvect.Vinstr.vkernel -> bool

(** Raises [Invalid_argument] listing every diagnostic. *)
val check_exn : Vvect.Vinstr.vkernel -> unit
