(* Linear-congruence domain: sets of integers of the form m*Z + r.

   [m = 0] is the constant r, [m = 1] is every integer (top), [m > 1] is the
   residue class r mod m.  This is Granger's arithmetical-congruence lattice,
   which is exactly what alignment questions need: an affine subscript's
   residue class modulo the vector factor decides whether every vector block
   starts on a lane-0-aligned element. *)

type t = { m : int; r : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Normalize so that 0 <= r < m when m > 0. *)
let make m r =
  let m = abs m in
  if m = 0 then { m = 0; r }
  else
    let r = ((r mod m) + m) mod m in
    { m; r }

let const c = { m = 0; r = c }
let top = { m = 1; r = 0 }
let is_top c = c.m = 1
let is_const c = c.m = 0

(* Magnitudes past this degrade to top rather than risk int overflow in the
   products below; subscript arithmetic never gets near it. *)
let limit = 1 lsl 31

let guard c = if abs c.r > limit || c.m > limit then top else c

let join a b =
  if a.m = 0 && b.m = 0 && a.r = b.r then a
  else guard (make (gcd (gcd a.m b.m) (a.r - b.r)) a.r)

let add a b = guard (make (gcd a.m b.m) (a.r + b.r))
let neg a = make a.m (-a.r)
let sub a b = add a (neg b)

(* (m1 Z + r1)(m2 Z + r2) expands to m1 m2 Z^2 + m1 r2 Z + m2 r1 Z + r1 r2;
   every product lies in gcd(m1 m2, m1 r2, m2 r1) Z + r1 r2. *)
let mul a b =
  if (a.m = 0 && a.r = 0) || (b.m = 0 && b.r = 0) then const 0
  else if abs a.r > limit || abs b.r > limit || a.m > limit || b.m > limit then
    top
  else guard (make (gcd (a.m * b.m) (gcd (a.m * b.r) (b.m * a.r))) (a.r * b.r))

let mul_const c a = mul (const c) a

let contains c v =
  match c.m with 0 -> v = c.r | 1 -> true | m -> (((v - c.r) mod m) + m) mod m = 0

let equal a b = a.m = b.m && a.r = b.r

(* The residue class modulo [k] that every member of [c] falls in, when that
   is a single class: requires k | m (a constant always qualifies). *)
let residue_mod c ~k =
  if k <= 0 then None
  else if c.m = 0 then Some (((c.r mod k) + k) mod k)
  else if c.m mod k = 0 then Some (((c.r mod k) + k) mod k)
  else None

let to_string c =
  if is_top c then "Z"
  else if c.m = 0 then string_of_int c.r
  else Printf.sprintf "%dZ+%d" c.m c.r
