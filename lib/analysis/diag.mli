(** Structured diagnostics shared by every analysis pass. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
val severity_rank : severity -> int

type t = {
  pass : string;
  severity : severity;
  kernel : string;
  pos : int option;
  message : string;
}

val make :
  pass:string -> severity:severity -> kernel:string -> ?pos:int ->
  ('a, unit, string, t) format4 -> 'a

val error :
  pass:string -> kernel:string -> ?pos:int -> ('a, unit, string, t) format4 -> 'a

val warning :
  pass:string -> kernel:string -> ?pos:int -> ('a, unit, string, t) format4 -> 'a

val info :
  pass:string -> kernel:string -> ?pos:int -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool
val count_errors : t list -> int

(** Severity-major stable sort (errors first). *)
val sort : t list -> t list

(** Canonical order keyed on every field (kernel, pos, pass, severity,
    message) with exact duplicates collapsed; reports rendered from a
    canonical list are byte-identical regardless of producer scheduling. *)
val canonical : t list -> t list

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val json_escape : string -> string
val to_json : t -> string
val list_to_json : t list -> string
