(* Pass registry for the scalar lints.

   Passes share one dataflow computation per kernel; [run_all] analyzes
   once and folds every registered pass over the facts.  The registry is
   open: extensions (and tests) can [register] additional passes, which the
   CLI then picks up without changes. *)

type t = {
  name : string;
  descr : string;
  run : Dataflow.t -> Diag.t list;
}

let builtin : t list =
  [
    { name = "dead-result";
      descr = "instruction results never used by a store or reduction";
      run = Lints.dead_result };
    { name = "redundant-load";
      descr = "repeated loads of one address with no intervening store";
      run = Lints.redundant_load };
    { name = "lossy-cast";
      descr = "cast chains that narrow then re-widen, and no-op casts";
      run = Lints.lossy_cast };
    { name = "out-of-bounds";
      descr = "affine subscripts outside the declared array extents";
      run = Lints.out_of_bounds };
    { name = "invariant-store";
      descr = "stores to innermost-loop-invariant addresses";
      run = Lints.invariant_store };
    { name = "unused-array";
      descr = "declared arrays never accessed";
      run = Lints.unused_array };
    { name = "unused-param";
      descr = "declared scalar parameters never read";
      run = Lints.unused_param };
    { name = "misaligned-access";
      descr = "unit strides provably off-lane at the reference vector factor";
      run = Lints.misaligned_access };
    { name = "unbounded-recurrence";
      descr = "stores whose value range needs widening (unbounded recurrence)";
      run = Lints.unbounded_recurrence };
    { name = "dead-store";
      descr = "stores overwritten before any load observes them";
      run = Lints.dead_store };
    { name = "loop-invariant-compute";
      descr = "hoistable loop-invariant work left in the body";
      run = Lints.loop_invariant_compute };
    { name = "loop-carried-at-vf";
      descr = "dependences capping the legal vectorization factor";
      run = Lints.loop_carried_at_vf };
    { name = "assumed-conflict-free";
      descr = "legality resting on assumed conflict-free index arrays";
      run = Lints.assumed_conflict_free };
    { name = "frozen-buffer-write";
      descr = "effect license may-writes a Frozen index master buffer";
      run = Lints.frozen_buffer_write };
    { name = "effect-escape";
      descr = "may-write regions escaping the effect license's affine bounds";
      run = Lints.effect_escape };
  ]

let registry = ref builtin

let register p =
  if List.exists (fun q -> String.equal q.name p.name) !registry then
    invalid_arg (Printf.sprintf "Pass.register: duplicate pass %s" p.name);
  registry := !registry @ [ p ]

let all () = !registry

let find name = List.find_opt (fun p -> String.equal p.name name) !registry

(* Run one pass standalone (recomputes the facts). *)
let run_pass p (k : Vir.Kernel.t) = p.run (Dataflow.analyze k)

(* Run every registered pass over one shared dataflow analysis. *)
let run_all (k : Vir.Kernel.t) : Diag.t list =
  let df = Dataflow.analyze k in
  List.concat_map (fun p -> p.run df) !registry
