(** Analysis driver: scalar lints plus the vector-IR validation matrix
    (transform x VF), with human and JSON rendering.  Used by the CLI
    [lint] subcommand and the test-suite gate. *)

open Vir

type transform = Tllv | Tslp | Tunroll

val all_transforms : transform list
val transform_to_string : transform -> string
val transform_of_string : string -> transform option

(** VFs of the acceptance matrix: [2; 4; 8]. *)
val default_vfs : int list

type vec_outcome =
  | Checked of Diag.t list
  | Skipped of string  (** transform not applicable to this kernel *)

type vec_result = {
  vr_transform : transform;
  vr_vf : int;
  vr_outcome : vec_outcome;
}

type report = {
  r_kernel : string;
  r_scalar : Diag.t list;
  r_vector : vec_result list;
}

(** Vectorize (or unroll) and validate one configuration. *)
val validate_transformed : transform -> vf:int -> Kernel.t -> vec_outcome

val lint_kernel :
  ?transforms:transform list -> ?vfs:int list -> Kernel.t -> report

val lint_kernels :
  ?transforms:transform list -> ?vfs:int list -> Kernel.t list -> report list

val report_diags : report -> Diag.t list
val error_count : report -> int
val has_errors : report -> bool

val print_report : ?verbose:bool -> out_channel -> report -> unit
val print_summary : out_channel -> report list -> unit

val report_to_json : report -> string
val reports_to_json : report list -> string
