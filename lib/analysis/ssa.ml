(* Explicit SSA view of a kernel.

   A kernel body is already in SSA-by-position form — the instruction at
   index [k] defines virtual register [k], stores define nothing — but that
   invariant is implicit everywhere else in the codebase.  This module makes
   it checkable ([check] rejects uses of undefined or store-position
   registers and uses that precede their definition), and builds the
   structured control-flow graph of the loop nest together with its
   dominator tree so the optimizer's redundancy elimination can phrase its
   legality question the classical way: a definition may replace a use only
   when it dominates it.

   The CFG of a perfect nest of depth d is fixed by the shape:

     Entry -> Header 0 -> ... -> Header (d-1) -> Body -> Latch (d-1)
     Latch i -> Header i                      (back edge)
     Header i -> Latch (i-1)   (i > 0)       (loop exit, to outer latch)
     Header 0 -> Exit

   Immediate dominators are computed with the Cooper–Harvey–Kennedy
   iterative algorithm over reverse postorder; on this reducible graph it
   converges in two sweeps. *)

open Vir

type node = Entry | Header of int | Body | Latch of int | Exit

exception Not_ssa of string

type t = {
  kernel : Kernel.t;
  body : Instr.t array;
  nodes : node array;  (* node index -> label *)
  succ : int list array;
  pred : int list array;
  rpo : int array;  (* node indices in reverse postorder *)
  idom : int array;  (* immediate dominator; the entry maps to itself *)
  entry : int;
  block : int;  (* index of the [Body] node *)
}

let node_to_string = function
  | Entry -> "entry"
  | Header i -> Printf.sprintf "header.%d" i
  | Body -> "body"
  | Latch i -> Printf.sprintf "latch.%d" i
  | Exit -> "exit"

(* --- SSA well-formedness --------------------------------------------------- *)

let check (k : Kernel.t) =
  let body = Array.of_list k.Kernel.body in
  let n = Array.length body in
  let check_use ctx r =
    if r < 0 || r >= n then
      raise (Not_ssa (Printf.sprintf "%s reads undefined register r%d" ctx r));
    if Instr.is_store body.(r) then
      raise
        (Not_ssa
           (Printf.sprintf "%s reads r%d, which is a store and defines nothing"
              ctx r))
  in
  Array.iteri
    (fun pos instr ->
      List.iter
        (fun r ->
          let ctx = Printf.sprintf "instruction %d" pos in
          check_use ctx r;
          if r >= pos then
            raise
              (Not_ssa
                 (Printf.sprintf
                    "instruction %d reads r%d before its definition" pos r)))
        (Instr.reg_uses instr))
    body;
  List.iter
    (fun (red : Kernel.reduction) ->
      match red.red_src with
      | Instr.Reg r -> check_use ("reduction " ^ red.red_name) r
      | _ -> ())
    k.reductions

(* --- CFG + dominators ------------------------------------------------------ *)

let postorder nnodes succ entry =
  let seen = Array.make nnodes false in
  let order = ref [] in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs succ.(v);
      order := v :: !order
    end
  in
  dfs entry;
  (* [order] is already reverse postorder: each node is prepended after its
     successors finished. *)
  Array.of_list !order

let compute_idom nnodes succ pred entry =
  let rpo = postorder nnodes succ entry in
  let rpo_num = Array.make nnodes max_int in
  Array.iteri (fun i v -> rpo_num.(v) <- i) rpo;
  let idom = Array.make nnodes (-1) in
  idom.(entry) <- entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then
          match List.filter (fun p -> idom.(p) >= 0) pred.(b) with
          | [] -> ()
          | p0 :: rest ->
              let d = List.fold_left (fun acc p -> intersect acc p) p0 rest in
              if idom.(b) <> d then begin
                idom.(b) <- d;
                changed := true
              end)
      rpo
  done;
  (rpo, idom)

let of_kernel (k : Kernel.t) =
  check k;
  let d = List.length k.Kernel.loops in
  let entry = 0 in
  let header i = 1 + i in
  let block = 1 + d in
  let latch i = d + 2 + i in
  let exit = (2 * d) + 2 in
  let nnodes = (2 * d) + 3 in
  let nodes =
    Array.init nnodes (fun ix ->
        if ix = entry then Entry
        else if ix <= d then Header (ix - 1)
        else if ix = block then Body
        else if ix < exit then Latch (ix - d - 2)
        else Exit)
  in
  let succ = Array.make nnodes [] in
  let pred = Array.make nnodes [] in
  let edge a b =
    succ.(a) <- b :: succ.(a);
    pred.(b) <- a :: pred.(b)
  in
  edge entry (header 0);
  for i = 0 to d - 1 do
    edge (header i) (if i = d - 1 then block else header (i + 1));
    edge (header i) (if i = 0 then exit else latch (i - 1));
    edge (latch i) (header i)
  done;
  edge block (latch (d - 1));
  Array.iteri (fun v l -> succ.(v) <- List.rev l) succ;
  Array.iteri (fun v l -> pred.(v) <- List.rev l) pred;
  let rpo, idom = compute_idom nnodes succ pred entry in
  { kernel = k; body = Array.of_list k.Kernel.body; nodes; succ; pred; rpo;
    idom; entry; block }

let dominates t a b =
  let rec up v = v = a || (v <> t.entry && up t.idom.(v)) in
  up b

let dom_depth t v =
  let rec up v acc = if v = t.entry then acc else up t.idom.(v) (acc + 1) in
  up v 0

(* Both positions live in the single [Body] block, so a definition dominates
   a use exactly when it textually precedes it; the bound checks make this
   total. *)
let def_dominates_use t ~def ~use =
  def >= 0 && use >= 0 && def < use && use < Array.length t.body
