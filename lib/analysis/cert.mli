(** Static safety certificates: per-kernel, per-access bounds verdicts from
    the relational domain ({!Rel}), overlaid with witness-backed
    refutations from {!Vir.Bounds}, projected to the execution tier as a
    {!Vexec.License.t}.  A [Vsafe] verdict holds for every problem size
    n >= 4 and every parameter assignment inside the environment
    contracts; the closure tier still cross-checks the license against its
    bind-time interval proof and hard-fails on contradiction. *)

type verdict = Vsafe | Vunsafe | Vunknown

val verdict_to_string : verdict -> string

type align = Al_aligned | Al_misaligned of int | Al_unknown

val align_to_string : align -> string

type access_cert = {
  ac_id : int;  (** access id (memory-instruction order, = the numbering of
                    [Vexec.Program.lower]) *)
  ac_pos : int;  (** body position *)
  ac_array : string;
  ac_store : bool;
  ac_indirect : bool;
  ac_verdict : verdict;
  ac_reason : string;
      (** proving constraint for [Vsafe], concrete witness for [Vunsafe],
          cause for [Vunknown] *)
  ac_align : align;  (** congruence alignment at the certificate's vf;
                         informational (lint layer), never licenses *)
}

type t = {
  ct_kernel : string;
  ct_vf : int;
  ct_accesses : access_cert array;
  ct_guard_free : bool;
      (** every affine access proven: the unchecked body is licensed
          (indirect accesses keep their guards either way) *)
  ct_safe : int;
  ct_unsafe : int;
}

val default_vf : int

val certify : ?vf:int -> Vir.Kernel.t -> t
val safe_frac : t -> float

val license : t -> Vexec.License.t

val static_guard_free : t -> int
(** Accesses this certificate licenses to run unguarded (0 when not
    guard-free). *)

val bind_time_guard_free : ?n:int -> Vir.Kernel.t -> int
(** Baseline: accesses licensed by the per-bind interval check alone for
    the default environment at size [n] (default 1024) — all-or-nothing
    per kernel and affine-only. *)

val to_json : t -> string
(** Deterministic single-line JSON (stable field order, sorted by access
    id); byte-identical across worker counts. *)

val certify_batch : ?vf:int -> Vir.Kernel.t list -> (Vir.Kernel.t * t) list
(** Certify on the shared pool; results in input order. *)

type gate = {
  g_kernels : int;
  g_accesses : int;
  g_safe : int;
  g_unsafe : int;
  g_guard_free : int;
  g_bind_time : int;
  g_failures : string list;
}

val gate : ?floor:float -> (Vir.Kernel.t * t) list -> gate
(** The soundness gate: every guard-free kernel is executed under its
    license and cross-checked against the reference interpreter (any
    refuted license or divergence is a failure), the certified fraction
    must reach [floor] (default 0.25), and the static certificates must
    license strictly more accesses than the bind-time interval check. *)

val gate_pass : gate -> bool
