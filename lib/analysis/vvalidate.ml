(* Well-formedness of the vector IR.

   The cost model counts instruction classes over [Vinstr.vkernel] bodies,
   so a malformed vector body silently corrupts every downstream feature.
   This validator mirrors [Vir.Validate] for the wide IR: SSA-by-position
   register discipline, scalar/vector width discipline across the
   [Sc]/[Vextract]/[Vpack]/[Splat] boundary, element-type agreement (with
   the same numeric-class leniency as the scalar validator), lane and copy
   ranges, and the access-pattern tags of wide memory operations.

   Translation validation against the scalar kernel lives in [Equiv];
   [errors] runs both. *)

open Vir
module Vinstr = Vvect.Vinstr

type width = Wvec | Wsca

type vty = Num of Types.scalar | Mask of Types.scalar

let pass = "vvalidate"

let class_clash a b = Types.is_float a <> Types.is_float b

let check (vk : Vinstr.vkernel) : Diag.t list =
  let k = vk.scalar in
  let kernel = k.Kernel.name in
  let inner = Kernel.innermost k in
  let out = ref [] in
  let err ?pos fmt =
    Printf.ksprintf (fun m -> out := Diag.error ~pass ~kernel ?pos "%s" m :: !out) fmt
  in
  if vk.vf < 2 then err "vectorization factor %d < 2" vk.vf;
  if vk.ic < 1 then err "interleave count %d < 1" vk.ic;
  let vbody = Array.of_list vk.vbody in
  let n = Array.length vbody in
  (* (width, type) of each vbody position; [None] for stores/scatters. *)
  let slot : (width * vty) option array = Array.make n None in
  (* Resolve a register reference appearing inside position [pos]. *)
  let reg_slot pos r =
    if r < 0 || r >= pos then begin
      err ~pos "reads undefined vector-body register v%d" r;
      None
    end
    else slot.(r)
  in
  (* Type of a scalar operand used inside [Sc], [Splat] or [Vpack]; its
     [Reg]s refer to scalar-width vbody positions. *)
  let scalar_operand_ty pos what op =
    match op with
    | Instr.Reg r -> (
        match reg_slot pos r with
        | Some (Wvec, _) ->
            err ~pos "%s reads vector-width v%d in a scalar position" what r;
            None
        | Some (Wsca, t) -> Some t
        | None -> None)
    | Instr.Index v ->
        if not (List.mem v (Kernel.loop_vars k)) then
          err ~pos "%s reads unknown loop variable %s" what v;
        Some (Num Types.I64)
    | Instr.Param p ->
        if not (List.mem p k.Kernel.params) then
          err ~pos "%s reads undeclared parameter %s" what p;
        None
    | Instr.Imm_int _ -> None
    | Instr.Imm_float _ -> Some (Num Types.F32)
  in
  (* A [Splat] source must be innermost-loop-invariant: anything else would
     need a genuinely per-lane value (an iota or a loaded vector). *)
  let splat_ty pos op =
    (match op with
    | Instr.Index v when String.equal v inner.Kernel.var ->
        err ~pos "splats the innermost induction variable %s (needs an iota)" v
    | _ -> ());
    scalar_operand_ty pos "splat" op
  in
  let voperand_ty pos what (op : Vinstr.voperand) =
    match op with
    | Vinstr.V r -> (
        match reg_slot pos r with
        | Some (Wsca, _) ->
            err ~pos "%s reads scalar-width v%d in a vector position" what r;
            None
        | Some (Wvec, t) -> Some t
        | None -> None)
    | Vinstr.Splat s -> splat_ty pos s
  in
  let expect_num pos what want ty_opt =
    match ty_opt with
    | Some (Num t) when class_clash t want ->
        err ~pos "%s has type %s, expected %s" what (Types.to_string t)
          (Types.to_string want)
    | Some (Mask _) ->
        err ~pos "%s is a mask, expected %s" what (Types.to_string want)
    | Some (Num _) | None -> ()
  in
  let expect_vnum pos what want op = expect_num pos what want (voperand_ty pos what op) in
  let expect_vmask pos what op =
    match voperand_ty pos what op with
    | Some (Mask _) -> ()
    | Some (Num t) ->
        err ~pos "%s has type %s, expected a mask" what (Types.to_string t)
    | None -> err ~pos "%s must be a comparison result" what
  in
  let expect_vint pos what op =
    match voperand_ty pos what op with
    | Some (Num t) when Types.is_float t ->
        err ~pos "%s has float type %s, expected an integer index vector" what
          (Types.to_string t)
    | Some (Mask _) -> err ~pos "%s is a mask, expected an index vector" what
    | Some (Num _) | None -> ()
  in
  let check_array pos arr ty =
    match Kernel.find_array k arr with
    | None -> err ~pos "accesses undeclared array %s" arr
    | Some decl ->
        if not (Types.equal_scalar decl.arr_ty ty) then
          err ~pos "accesses %s as %s but it is declared %s" arr
            (Types.to_string ty)
            (Types.to_string decl.arr_ty)
  in
  let check_dims pos arr dims =
    (match Kernel.find_array k arr with
    | Some { arr_extent = Kernel.Quad; _ } when List.length dims <> 2 ->
        err ~pos "2-d array %s accessed with %d subscript(s)" arr
          (List.length dims)
    | Some { arr_extent = Kernel.Lin _; _ } when List.length dims <> 1 ->
        err ~pos "1-d array %s accessed with %d subscripts" arr
          (List.length dims)
    | Some _ | None -> ());
    List.iter
      (fun (d : Instr.dim) ->
        List.iter
          (fun (v, _) ->
            if not (List.mem v (Kernel.loop_vars k)) then
              err ~pos "subscripts unknown loop variable %s" v)
          d.Instr.terms;
        List.iter
          (fun (p, _) ->
            if not (List.mem p k.Kernel.params) then
              err ~pos "subscripts undeclared parameter %s" p)
          d.Instr.pterms)
      dims
  in
  (* The access tag must agree with the stride the subscripts actually
     have; a [Contig] tag on a strided address would execute wrong lanes. *)
  let check_access pos arr dims (access : Vinstr.access) =
    let addr = Instr.Affine { arr; dims } in
    let expected =
      match Kernel.access_stride k addr with
      | Kernel.Sconst 1 -> Some Vinstr.Contig
      | Kernel.Sconst (-1) -> Some Vinstr.Rev
      | Kernel.Sconst 0 -> None (* invariant: must not be a wide access *)
      | Kernel.Sconst s -> Some (Vinstr.Strided s)
      | Kernel.Srow _ -> Some Vinstr.Row
      | Kernel.Sindirect -> None
    in
    match expected with
    | None ->
        err ~pos "wide access to %s has no per-lane stride (invariant address)"
          arr
    | Some e ->
        if e <> access then
          err ~pos "access to %s tagged %s but subscripts have %s stride" arr
            (Vinstr.access_to_string access)
            (Vinstr.access_to_string e)
  in
  (* Type-check one scalar instruction hosted in an [Sc] slot. *)
  let check_sc pos (instr : Instr.t) : vty option =
    let op_ty what op = scalar_operand_ty pos what op in
    let expect what want op = expect_num pos what want (op_ty what op) in
    let check_sc_addr ty addr =
      (match addr with
      | Instr.Affine { arr; dims } ->
          check_array pos arr ty;
          check_dims pos arr dims
      | Instr.Indirect { arr; idx } -> (
          check_array pos arr ty;
          match op_ty "indirect index" idx with
          | Some (Num t) when Types.is_float t ->
              err ~pos "indirect index is a float"
          | Some (Mask _) -> err ~pos "indirect index is a mask"
          | Some (Num _) | None -> ()))
    in
    match instr with
    | Instr.Bin { ty; op; a; b } ->
        if Op.binop_int_only op && Types.is_float ty then
          err ~pos "%s is integer-only but typed %s" (Op.binop_to_string op)
            (Types.to_string ty);
        expect "lhs" ty a;
        expect "rhs" ty b;
        Some (Num ty)
    | Instr.Una { ty; op; a } ->
        if Op.unop_float_only op && Types.is_int ty then
          err ~pos "%s is float-only but typed %s" (Op.unop_to_string op)
            (Types.to_string ty);
        expect "operand" ty a;
        Some (Num ty)
    | Instr.Fma { ty; a; b; c } ->
        if Types.is_int ty then err ~pos "integer fma";
        expect "a" ty a;
        expect "b" ty b;
        expect "c" ty c;
        Some (Num ty)
    | Instr.Cmp { ty; a; b; _ } ->
        expect "lhs" ty a;
        expect "rhs" ty b;
        Some (Mask ty)
    | Instr.Select { ty; cond; if_true; if_false } ->
        (match op_ty "condition" cond with
        | Some (Mask _) -> ()
        | Some (Num t) ->
            err ~pos "condition has type %s, expected a mask" (Types.to_string t)
        | None -> err ~pos "condition must be a comparison result");
        expect "true arm" ty if_true;
        expect "false arm" ty if_false;
        Some (Num ty)
    | Instr.Load { ty; addr } ->
        check_sc_addr ty addr;
        Some (Num ty)
    | Instr.Store { ty; addr; src } ->
        check_sc_addr ty addr;
        expect "stored value" ty src;
        None
    | Instr.Cast { src_ty; dst_ty; a } ->
        expect "operand" src_ty a;
        Some (Num dst_ty)
  in
  Array.iteri
    (fun pos (vi : Vinstr.t) ->
      let result : (width * vty) option =
        match vi with
        | Vinstr.Vbin { ty; op; a; b } ->
            if Op.binop_int_only op && Types.is_float ty then
              err ~pos "%s is integer-only but typed %s"
                (Op.binop_to_string op) (Types.to_string ty);
            expect_vnum pos "lhs" ty a;
            expect_vnum pos "rhs" ty b;
            Some (Wvec, Num ty)
        | Vinstr.Vuna { ty; op; a } ->
            if Op.unop_float_only op && Types.is_int ty then
              err ~pos "%s is float-only but typed %s" (Op.unop_to_string op)
                (Types.to_string ty);
            if Op.unop_int_only op && Types.is_float ty then
              err ~pos "%s is integer-only but typed %s"
                (Op.unop_to_string op) (Types.to_string ty);
            expect_vnum pos "operand" ty a;
            Some (Wvec, Num ty)
        | Vinstr.Vfma { ty; a; b; c } ->
            if Types.is_int ty then err ~pos "integer vector fma";
            expect_vnum pos "a" ty a;
            expect_vnum pos "b" ty b;
            expect_vnum pos "c" ty c;
            Some (Wvec, Num ty)
        | Vinstr.Vcmp { ty; a; b; _ } ->
            expect_vnum pos "lhs" ty a;
            expect_vnum pos "rhs" ty b;
            Some (Wvec, Mask ty)
        | Vinstr.Vselect { ty; cond; if_true; if_false } ->
            expect_vmask pos "condition" cond;
            expect_vnum pos "true arm" ty if_true;
            expect_vnum pos "false arm" ty if_false;
            Some (Wvec, Num ty)
        | Vinstr.Vload { ty; arr; dims; access } ->
            check_array pos arr ty;
            check_dims pos arr dims;
            check_access pos arr dims access;
            Some (Wvec, Num ty)
        | Vinstr.Vstore { ty; arr; dims; access; src } ->
            check_array pos arr ty;
            check_dims pos arr dims;
            check_access pos arr dims access;
            expect_vnum pos "stored value" ty src;
            None
        | Vinstr.Vgather { ty; arr; idx } ->
            check_array pos arr ty;
            expect_vint pos "gather index" idx;
            Some (Wvec, Num ty)
        | Vinstr.Vscatter { ty; arr; idx; src } ->
            check_array pos arr ty;
            expect_vint pos "scatter index" idx;
            expect_vnum pos "scattered value" ty src;
            None
        | Vinstr.Viota { ty } ->
            if Types.is_float ty then
              err ~pos "iota of float type %s" (Types.to_string ty);
            Some (Wvec, Num ty)
        | Vinstr.Vcast { src_ty; dst_ty; a } ->
            expect_vnum pos "operand" src_ty a;
            Some (Wvec, Num dst_ty)
        | Vinstr.Vpack { ty; srcs } ->
            if Array.length srcs <> vk.vf then
              err ~pos "pack of %d sources at VF %d" (Array.length srcs) vk.vf;
            let masks = ref 0 and nums = ref 0 in
            Array.iteri
              (fun i src ->
                match scalar_operand_ty pos (Printf.sprintf "pack source %d" i)
                        src
                with
                | Some (Mask _) -> incr masks
                | Some (Num t) ->
                    incr nums;
                    if class_clash t ty then
                      err ~pos "pack source %d has type %s, expected %s" i
                        (Types.to_string t) (Types.to_string ty)
                | None -> ())
              srcs;
            if !masks > 0 && !nums > 0 then
              err ~pos "pack mixes mask and numeric sources";
            Some (Wvec, if !masks > 0 then Mask ty else Num ty)
        | Vinstr.Vextract { ty; src; lane } ->
            if lane < 0 || lane >= vk.vf then
              err ~pos "extracts lane %d outside [0, %d)" lane vk.vf;
            let src_ty = voperand_ty pos "extract source" src in
            (match src_ty with
            | Some (Num t) when class_clash t ty ->
                err ~pos "extracts %s lane from a %s vector"
                  (Types.to_string ty) (Types.to_string t)
            | _ -> ());
            let vty =
              match src_ty with Some (Mask _) -> Mask ty | _ -> Num ty
            in
            Some (Wsca, vty)
        | Vinstr.Sc { copy; instr } ->
            let span = vk.vf * vk.ic in
            if copy < 0 || copy >= span then
              err ~pos "scalar copy index %d outside [0, %d = vf*ic)" copy span;
            Option.map (fun t -> (Wsca, t)) (check_sc pos instr)
      in
      slot.(pos) <- result)
    vbody;
  (* Reductions accumulate one full vector per iteration. *)
  List.iter
    (fun (vr : Vinstr.vreduction) ->
      let what = Printf.sprintf "reduction %s" vr.vr_name in
      (match voperand_ty n what vr.vr_src with
      | Some (Mask _) -> err "%s accumulates a mask" what
      | Some (Num t) when class_clash t vr.vr_ty ->
          err "%s: source type %s vs accumulator %s" what (Types.to_string t)
            (Types.to_string vr.vr_ty)
      | Some (Num _) | None -> ());
      if Types.is_int vr.vr_ty && vr.vr_op = Op.Rprod then
        err "%s: integer product reductions are not supported" what)
    vk.vreductions;
  List.rev !out

(* Structural checks plus translation validation against the scalar
   kernel. *)
let errors (vk : Vinstr.vkernel) : Diag.t list =
  let structural = check vk in
  (* Translation validation only makes sense on a structurally sound body. *)
  if structural <> [] then structural else structural @ Equiv.vkernel_diags vk

let is_valid vk = errors vk = []

let check_exn vk =
  match errors vk with
  | [] -> ()
  | ds ->
      invalid_arg
        (Printf.sprintf "invalid vector kernel %s:\n  %s"
           vk.Vinstr.scalar.Kernel.name
           (String.concat "\n  " (List.map Diag.to_string ds)))
