(** Available expressions / value numbering over the SSA body: one forward
    sweep assigns each position the earliest *dominating* position that
    computes the same value (its leader), with commutative operand pairs
    canonicalized and loads killed by intervening stores to their array.
    The GVN/CSE pass rewrites every position to its leader; [across] marks
    the expressions that survive the innermost back edge (LICM
    candidates). *)

open Vir

type t = {
  ssa : Ssa.t;
  leader : int array;
  avail_in : int array;
  across : bool array;
}

(** Builds the SSA view (checking well-formedness) and runs the sweep.
    Pass [?df] to share an existing dataflow analysis. *)
val analyze : ?df:Dataflow.t -> Kernel.t -> t

(** Canonical (leader-substituted, commutativity-sorted, address-normalized)
    form of an instruction — the value-numbering hash key. *)
val canonical : int array -> Instr.t -> Instr.t

(** Earliest dominating position computing the same value. *)
val leader_of : t -> int -> int

(** True when the position recomputes an already-available value. *)
val redundant : t -> int -> bool

(** True when the position's value survives the innermost back edge. *)
val available_across : t -> int -> bool
