(* Available expressions over the SSA body.

   Classic value numbering, specialized to the single-block bodies the IR
   guarantees: a forward sweep assigns every position a *leader* — the
   earliest dominating position computing the same value — by hashing the
   canonical form of each instruction.  Canonicalization rewrites operands
   through the leaders found so far (so chains of copies collapse) and
   sorts the operand pair of commutative binops, making [a+b] and [b+a]
   one value.

   Loads participate with the usual kill rule: a load is available only
   until the next store to its array (array-granular memory dependence,
   the same conservative rule the vectorizer's dependence tests use).
   Stores never define a value and kill by array name.

   [across] additionally marks expressions whose value survives the back
   edge of the innermost loop — invariant operands and, for loads, an
   array no store in the body writes — i.e. the expressions LICM may hoist
   into the preheader prefix. *)

open Vir

type t = {
  ssa : Ssa.t;
  leader : int array;
      (* earliest dominating position computing the same value;
         leader.(p) = p when the position is its own leader *)
  avail_in : int array;
      (* number of distinct expression values available before each
         position *)
  across : bool array;
      (* value survives the innermost back edge (hoistable) *)
}

(* Canonical form used as the hash key: operands rewritten to their
   leaders, commutative operand pairs sorted, addresses normalized. *)
let canonical leader instr =
  let subst = function
    | Instr.Reg r when r >= 0 && r < Array.length leader ->
        Instr.Reg leader.(r)
    | op -> op
  in
  let instr = Instr.map_operands subst instr in
  match instr with
  | Instr.Bin ({ op; a; b; _ } as r)
    when Op.binop_commutative op && compare b a < 0 ->
      Instr.Bin { r with a = b; b = a }
  | Instr.Fma ({ a; b; _ } as r) when compare b a < 0 ->
      Instr.Fma { r with a = b; b = a }
  | Instr.Load { ty; addr } -> Instr.Load { ty; addr = Instr.normalize_addr addr }
  | Instr.Store { ty; addr; src } ->
      Instr.Store { ty; addr = Instr.normalize_addr addr; src }
  | i -> i

let analyze ?df (k : Kernel.t) =
  let ssa = Ssa.of_kernel k in
  let df = match df with Some d -> d | None -> Dataflow.analyze k in
  let body = ssa.Ssa.body in
  let n = Array.length body in
  let leader = Array.init n (fun i -> i) in
  let avail_in = Array.make n 0 in
  let across = Array.make n false in
  let seen : (Instr.t, int) Hashtbl.t = Hashtbl.create 16 in
  let store_seen : (string, int) Hashtbl.t = Hashtbl.create 4 in
  for pos = 0 to n - 1 do
    avail_in.(pos) <- Hashtbl.length seen;
    let instr = canonical leader body.(pos) in
    match instr with
    | Instr.Store { addr; _ } ->
        Hashtbl.replace store_seen (Instr.addr_array addr) pos
    | Instr.Load { addr; _ } -> (
        let arr = Instr.addr_array addr in
        let killed prev =
          match Hashtbl.find_opt store_seen arr with
          | Some s -> s > prev
          | None -> false
        in
        match Hashtbl.find_opt seen instr with
        | Some prev
          when Ssa.def_dominates_use ssa ~def:prev ~use:pos
               && not (killed prev) ->
            leader.(pos) <- prev
        | _ -> Hashtbl.replace seen instr pos)
    | _ -> (
        match Hashtbl.find_opt seen instr with
        | Some prev when Ssa.def_dominates_use ssa ~def:prev ~use:pos ->
            leader.(pos) <- prev
        | _ -> Hashtbl.replace seen instr pos)
  done;
  Array.iteri
    (fun pos instr ->
      across.(pos) <-
        (not (Instr.is_store instr))
        && leader.(pos) = pos
        && df.Dataflow.invariant.(pos))
    body;
  { ssa; leader; avail_in; across }

let leader_of t pos = t.leader.(pos)
let redundant t pos = t.leader.(pos) <> pos
let available_across t pos = t.across.(pos)
