(* Lint passes over the scalar IR.

   Each pass takes the shared dataflow facts and returns diagnostics.  The
   lints target exactly the defects that skew the paper's cost-model
   features: a dead or redundant instruction changes the instruction-class
   counts the models are fitted over, an out-of-bounds subscript makes the
   simulated measurements meaningless, and an invariant store blocks
   vectorization altogether.

   Severity policy: anything that invalidates measurements or IR semantics
   is an [Error]; shape defects that merely skew features are [Warning];
   stylistic redundancy is [Info]. *)

open Vir

let kname (df : Dataflow.t) = df.kernel.Kernel.name

(* --- dead instruction results ------------------------------------------- *)

(* A non-store instruction whose value never reaches a store or a reduction
   contributes to every instruction-count feature but not to the kernel's
   observable effect. *)
let dead_result (df : Dataflow.t) =
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      if (not (Instr.is_store instr)) && not df.live.(pos) then
        out :=
          Diag.warning ~pass:"dead-result" ~kernel:(kname df) ~pos
            "result r%d is never used by a store or reduction" pos
          :: !out)
    df.body;
  List.rev !out

(* --- redundant loads ----------------------------------------------------- *)

(* Two loads of the same address with no intervening store to that array
   read the same value: a CSE opportunity that inflates the load counts the
   rated features are built from.  Addresses compare syntactically after
   canonicalizing operands through earlier merges, mirroring
   [Simplify.cse]. *)
let redundant_load (df : Dataflow.t) =
  let n = Array.length df.body in
  let seen : (Instr.t, int) Hashtbl.t = Hashtbl.create 8 in
  let store_seen : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let merged = Array.make n None in
  let out = ref [] in
  for pos = 0 to n - 1 do
    let instr =
      Instr.map_operands
        (function
          | Instr.Reg r as op -> (
              match merged.(r) with Some t -> Instr.Reg t | None -> op)
          | op -> op)
        df.body.(pos)
    in
    match instr with
    | Instr.Store { addr; _ } ->
        Hashtbl.replace store_seen (Instr.addr_array addr) pos
    | Instr.Load { addr; _ } -> (
        let arr = Instr.addr_array addr in
        match Hashtbl.find_opt seen instr with
        | Some prev
          when (match Hashtbl.find_opt store_seen arr with
               | Some s -> s < prev
               | None -> true) ->
            merged.(pos) <- Some prev;
            out :=
              Diag.warning ~pass:"redundant-load" ~kernel:(kname df) ~pos
                "load of %s repeats instruction %d with no intervening store"
                arr prev
              :: !out
        | _ -> Hashtbl.replace seen instr pos)
    | _ -> ()
  done;
  List.rev !out

(* --- lossy cast chains ---------------------------------------------------- *)

(* The value range of an operand at one body position, from the shared
   abstract-interpretation summary; top when intervals say nothing. *)
let operand_interval (summary : Absint.summary) = function
  | Instr.Reg r -> summary.Absint.s_regs.(r)
  | Instr.Imm_int i -> Interval.const (float_of_int i)
  | Instr.Imm_float f -> Interval.const f
  | Instr.Index _ | Instr.Param _ -> Interval.top

(* Can every value in [iv] round-trip through the middle type [mid] without
   loss?  For an integer-typed source the whole range just has to fit the
   middle type; a float-typed source needs a provably integral (constant)
   value, since truncation drops any fractional part. *)
let fits_middle ~src mid (iv : Interval.t) =
  let lo = iv.Interval.lo and hi = iv.Interval.hi in
  let integral_const = lo = hi && Float.is_integer lo in
  let int_source = Types.is_int src || integral_const in
  match mid with
  | Types.I64 -> int_source
  | Types.I32 ->
      int_source && lo >= -2147483648.0 && hi <= 2147483647.0
  | Types.F32 ->
      (* Integers of magnitude < 2^24 are exact in binary32. *)
      int_source && lo > -16777216.0 && hi < 16777216.0
  | Types.F64 -> Types.is_int src

let lossy_cast (df : Dataflow.t) =
  let summary =
    lazy (Absint.analyze ~n:Absint.default_n df.Dataflow.kernel)
  in
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      match instr with
      | Instr.Cast { src_ty; dst_ty; a } ->
          if Types.equal_scalar src_ty dst_ty then
            out :=
              Diag.info ~pass:"lossy-cast" ~kernel:(kname df) ~pos
                "no-op cast %s -> %s" (Types.to_string src_ty)
                (Types.to_string dst_ty)
              :: !out;
          (match a with
          | Instr.Reg r -> (
              match df.body.(r) with
              | Instr.Cast { src_ty = s0; dst_ty = s1; _ }
                when Types.equal_scalar s1 src_ty ->
                  (* Chain s0 -> s1 -> dst_ty: lossy when the middle type
                     cannot represent every value of the origin type but the
                     destination could. *)
                  let narrows =
                    Types.size_bytes s1 < Types.size_bytes s0
                    || (Types.is_float s0 && Types.is_int s1)
                  in
                  let rewidens =
                    Types.size_bytes dst_ty > Types.size_bytes s1
                    || (Types.is_float dst_ty && Types.is_int s1)
                  in
                  let provably_exact =
                    match df.body.(r) with
                    | Instr.Cast { a = inner_src; _ } ->
                        fits_middle ~src:s0 s1
                          (operand_interval (Lazy.force summary) inner_src)
                    | _ -> false
                  in
                  if narrows && rewidens && not provably_exact then
                    out :=
                      Diag.warning ~pass:"lossy-cast" ~kernel:(kname df) ~pos
                        "cast chain %s -> %s -> %s loses precision in the \
                         middle type"
                        (Types.to_string s0) (Types.to_string s1)
                        (Types.to_string dst_ty)
                      :: !out
              | _ -> ())
          | _ -> ())
      | _ -> ())
    df.body;
  List.rev !out

(* --- out-of-bounds affine subscripts -------------------------------------- *)

(* Delegates to the witness-size bounds analysis.  The corner evaluation is
   exact, so verdicts are sound: a [Proven] violation means running the
   kernel traps at a real iteration under the interpreter's default
   bindings (an error), while [Possible] only manifests for some parameter
   values inside the environment contract (a warning).  One diagnostic per
   access, preferring the proven witness.

   The relational prover's safety certificate refines the [Possible] tier:
   an access it certifies [Vsafe] is in-bounds for *every* parameter
   assignment inside the contract, so the parameter-dependent warning is
   noise and is silenced; an access it refutes ([Vunsafe]) is upgraded to
   an error.  In theory the exact corner evaluation and a sound prover can
   never disagree — the silence path is an anti-drift safety net, and the
   disagreement itself would be the bug worth hearing about. *)
let out_of_bounds (df : Dataflow.t) =
  let classified = Bounds.classify df.kernel in
  let cert_verdict =
    lazy
      (let c = Cert.certify df.kernel in
       let tbl = Hashtbl.create 8 in
       Array.iter
         (fun (a : Cert.access_cert) ->
           Hashtbl.replace tbl a.Cert.ac_pos a.Cert.ac_verdict)
         c.Cert.ct_accesses;
       tbl)
  in
  let by_pos : (int, Bounds.classified) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (c : Bounds.classified) ->
      let pos = c.Bounds.c_violation.Bounds.v_pos in
      match Hashtbl.find_opt by_pos pos with
      | Some prev when prev.Bounds.c_verdict = Bounds.Proven -> ()
      | Some _ when c.Bounds.c_verdict = Bounds.Proven ->
          Hashtbl.replace by_pos pos c
      | Some _ -> ()
      | None -> Hashtbl.add by_pos pos c)
    classified;
  Hashtbl.fold (fun pos c acc -> (pos, c) :: acc) by_pos []
  |> List.sort compare
  |> List.filter_map (fun (pos, (c : Bounds.classified)) ->
         let v = c.Bounds.c_violation in
         let text = Format.asprintf "%a" Bounds.pp_violation v in
         match c.Bounds.c_verdict with
         | Bounds.Proven ->
             Some
               (Diag.error ~pass:"out-of-bounds" ~kernel:(kname df) ~pos
                  "proven: %s" text)
         | Bounds.Possible -> (
             match Hashtbl.find_opt (Lazy.force cert_verdict) pos with
             | Some Cert.Vsafe -> None
             | Some Cert.Vunsafe ->
                 Some
                   (Diag.error ~pass:"out-of-bounds" ~kernel:(kname df) ~pos
                      "refuted by safety certificate: %s" text)
             | Some Cert.Vunknown | None ->
                 Some
                   (Diag.warning ~pass:"out-of-bounds" ~kernel:(kname df) ~pos
                      "possible (parameter-dependent, not certified): %s" text)))

(* --- stores to loop-invariant addresses ------------------------------------ *)

(* Writing the same location every iteration makes the loop body
   order-dependent (last write wins) and is exactly what [Llv] rejects with
   [Invariant_store]; flag it before the vectorizer does. *)
let invariant_store (df : Dataflow.t) =
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      match instr with
      | Instr.Store { addr; _ } when Dataflow.addr_invariant df addr ->
          out :=
            Diag.warning ~pass:"invariant-store" ~kernel:(kname df) ~pos
              "store to %s writes a loop-invariant address (blocks \
               vectorization)"
              (Instr.addr_array addr)
            :: !out
      | _ -> ())
    df.body;
  List.rev !out

(* --- unused declarations ---------------------------------------------------- *)

let unused_array (df : Dataflow.t) =
  let k = df.kernel in
  let accessed = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      match Instr.accessed_array instr with
      | Some a -> Hashtbl.replace accessed a ()
      | None -> ())
    df.body;
  List.filter_map
    (fun (d : Kernel.array_decl) ->
      if Hashtbl.mem accessed d.arr_name then None
      else
        Some
          (Diag.warning ~pass:"unused-array" ~kernel:(kname df)
             "array %s is declared but never accessed" d.arr_name))
    k.Kernel.arrays

let unused_param (df : Dataflow.t) =
  let k = df.kernel in
  let used = Hashtbl.create 4 in
  let mark_op = function
    | Instr.Param p -> Hashtbl.replace used p ()
    | _ -> ()
  in
  let mark_dim (d : Instr.dim) =
    List.iter (fun (p, _) -> Hashtbl.replace used p ()) d.Instr.pterms
  in
  let mark_addr = function
    | Instr.Affine { dims; _ } -> List.iter mark_dim dims
    | Instr.Indirect { idx; _ } -> mark_op idx
  in
  Array.iter
    (fun instr ->
      List.iter mark_op (Instr.operands instr);
      match instr with
      | Instr.Load { addr; _ } | Instr.Store { addr; _ } -> mark_addr addr
      | _ -> ())
    df.body;
  List.iter (fun (r : Kernel.reduction) -> mark_op r.red_src) k.reductions;
  List.filter_map
    (fun p ->
      if Hashtbl.mem used p then None
      else
        Some
          (Diag.warning ~pass:"unused-param" ~kernel:(kname df)
             "parameter %s is declared but never read" p))
    k.Kernel.params

(* --- provably misaligned unit-stride accesses ------------------------------- *)

(* A unit-stride access whose flat-index congruence pins a residue class mod
   the reference vector factor that is not the aligned one: every vector
   block the vectorizer would form starts off-lane, so the access pays the
   unaligned path on every machine that distinguishes it.  Accesses whose
   residue the congruences cannot pin are left alone — only *provable*
   misalignment is reported. *)
let misaligned_vf = 4

let misaligned_access (df : Dataflow.t) =
  let summary =
    Absint.analyze ~vf:misaligned_vf ~n:Absint.default_n df.Dataflow.kernel
  in
  (* The safety certificate records the same residue computation; note when
     the access is otherwise certified in-bounds so the reader knows the
     misalignment is the only cost left, not a safety problem.  Severity
     stays [Warning] either way: misalignment skews the cost features but
     never invalidates the measurement. *)
  let cert = lazy (Cert.certify ~vf:misaligned_vf df.kernel) in
  let certified_safe pos =
    Array.exists
      (fun (a : Cert.access_cert) ->
        a.Cert.ac_pos = pos && a.Cert.ac_verdict = Cert.Vsafe)
      (Lazy.force cert).Cert.ct_accesses
  in
  List.filter_map
    (fun (ai : Absint.access_info) ->
      match ai.Absint.ai_class with
      | Absint.Unaligned -> (
          match Congr.residue_mod ai.Absint.ai_congr ~k:misaligned_vf with
          | Some r ->
              Some
                (Diag.warning ~pass:"misaligned-access" ~kernel:(kname df)
                   ~pos:ai.Absint.ai_pos
                   "%s of %s is provably misaligned at vf=%d (block starts \
                    in residue class %d)%s"
                   (if ai.Absint.ai_store then "store" else "load")
                   ai.Absint.ai_arr misaligned_vf r
                   (if certified_safe ai.Absint.ai_pos then
                      "; certified in-bounds, misalignment is the only cost"
                    else ""))
          | None -> None)
      | _ -> None)
    summary.Absint.s_accesses

(* --- recurrences the intervals cannot bound ---------------------------------- *)

(* A store position whose array interval only stabilized through widening
   carries a loop-carried recurrence with an unbounded value range: sums
   that grow every iteration, running products, prefix scans.  Flag it —
   these kernels are exactly where fixed-width value-range reasoning (and
   any optimization leaning on it) gives up. *)
let unbounded_recurrence (df : Dataflow.t) =
  let summary = Absint.analyze ~n:Absint.default_n df.Dataflow.kernel in
  List.map
    (fun pos ->
      Diag.warning ~pass:"unbounded-recurrence" ~kernel:(kname df) ~pos
        "store feeds a loop-carried recurrence whose value range required \
         widening (unbounded across iterations)")
    summary.Absint.s_widened

(* --- dead stores -------------------------------------------------------------- *)

(* A store overwritten by a later identical-address store before any load of
   the array observes it contributes a store-class feature count (and a
   simulated memory access) for work the compiled loop would never do.
   Detection is shared with the optimizer's DSE pass. *)
let dead_store (df : Dataflow.t) =
  List.map
    (fun pos ->
      let arr =
        match df.body.(pos) with
        | Instr.Store { addr; _ } -> Instr.addr_array addr
        | _ -> "?"
      in
      Diag.warning ~pass:"dead-store" ~kernel:(kname df) ~pos
        "store to %s is overwritten before any load observes it" arr)
    (List.sort compare (Opt.dead_stores df.kernel))

(* --- loop-invariant computation left in the body ------------------------------- *)

(* Live work whose value is the same on every innermost iteration: a real
   compiler hoists it to the preheader, so leaving it in the body inflates
   every per-iteration instruction count the cost model is fitted over.
   Exactly the positions [Opt]'s LICM moves to the preheader prefix. *)
let loop_invariant_compute (df : Dataflow.t) =
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      if df.invariant.(pos) && df.live.(pos) then
        out :=
          Diag.warning ~pass:"loop-invariant-compute" ~kernel:(kname df) ~pos
            "%s is innermost-loop invariant (hoistable to the preheader)"
            (if Instr.is_load instr then "load" else "computation")
          :: !out)
    df.body;
  List.rev !out

(* --- dependence-limited vectorization ------------------------------------------ *)

(* The legality oracle caps the vectorization factor below the widest machine
   width: every dependence that constrains the verdict is named, at its sink,
   with the exact iteration distance.  This makes a silent [Max_vf] cap (the
   single most common reason a loop "mysteriously" fails to vectorize at the
   profitable width) visible in the lint report. *)
let loop_carried_at_vf (df : Dataflow.t) =
  match Vdeps.Dependence.vf_limit df.Dataflow.kernel with
  | Vdeps.Dependence.Unlimited -> []
  | Vdeps.Dependence.Max_vf m ->
      Vdeps.Dependence.analyze df.Dataflow.kernel
      |> List.filter Vdeps.Dependence.constrains
      |> List.map (fun (d : Vdeps.Dependence.dep) ->
             Diag.warning ~pass:"loop-carried-at-vf" ~kernel:(kname df)
               ~pos:d.snk_pos
               "%s dependence on %s (distance %s) caps the legal \
                vectorization factor at %d"
               (Vdeps.Dependence.kind_to_string d.kind)
               d.array
               (Vdeps.Dependence.distance_to_string d.distance)
               m)

(* --- legality resting on unproven aliasing ------------------------------------- *)

(* Indirect (gather/scatter) subscripts are assumed conflict-free by the
   oracle — the same contract a compiler discharges with a runtime alias
   check.  Surface the assumption so it is never silent: a dataset built
   from such a kernel embeds the assumption in every derived feature. *)
let assumed_conflict_free (df : Dataflow.t) =
  if not (Vdeps.Dependence.needs_runtime_assumption df.Dataflow.kernel) then []
  else
    Vdeps.Dependence.analyze df.Dataflow.kernel
    |> List.filter (fun (d : Vdeps.Dependence.dep) -> d.assumed)
    |> List.map (fun (d : Vdeps.Dependence.dep) ->
           Diag.warning ~pass:"assumed-conflict-free" ~kernel:(kname df)
             ~pos:d.snk_pos
             "legality assumes index expressions on %s never conflict \
              (would need a runtime alias check)"
             d.array)

(* --- ownership-discipline violations ------------------------------------- *)

(* First store (affine or scatter) naming [arr], for diagnostic anchoring. *)
let first_store_pos (df : Dataflow.t) arr =
  let pos = ref 0 in
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Store { addr; _ }
        when !pos = 0 && String.equal (Instr.addr_array addr) arr ->
          pos := i
      | _ -> ())
    df.body;
  !pos

(* Index arrays hold the subscript permutations gather/scatter draw from;
   the runtime's ownership discipline keeps them [Frozen] — aliased to the
   process-wide master — in every environment.  A kernel whose effect
   license may-writes one either trips the frozen-write barrier at runtime
   or forces a private copy whose mutated subscripts no longer describe
   the dataset the cost model was fitted over.  Either way the kernel's
   measurements are meaningless, hence [Error]. *)
let frozen_buffer_write (df : Dataflow.t) =
  let license = Vexec.Effects.of_kernel df.Dataflow.kernel in
  df.Dataflow.kernel.Kernel.arrays
  |> List.filter_map (fun (d : Kernel.array_decl) ->
         match d.arr_role with
         | Kernel.Idx when Vexec.Effects.may_write license d.arr_name ->
             Some
               (Diag.error ~pass:"frozen-buffer-write" ~kernel:(kname df)
                  ~pos:(first_store_pos df d.arr_name)
                  "store to index array %s violates the ownership \
                   discipline (index buffers alias the Frozen shared \
                   master)"
                  d.arr_name)
         | _ -> None)

(* --- may-write regions the effect license cannot bound -------------------- *)

(* The effect license is only as sharp as its regions: a scatter write has
   no affine region at all, and a write whose abstract flat-index range
   needed widening is unbounded.  Both escape the per-array region the
   cross-check ([Analysis.Effect]) can verify trace containment against,
   so downstream consumers fall back to whole-array ownership.  The write
   regions are joined here straight from the abstract-interpretation
   accesses ([Effect.regions] does the same join, but through [Driver],
   which would close a module cycle with the pass registry). *)
let effect_escape (df : Dataflow.t) =
  let k = df.Dataflow.kernel in
  let license = Vexec.Effects.of_kernel k in
  let write_range =
    lazy
      (let summary = Absint.analyze ~n:Absint.default_n k in
       let tbl = Hashtbl.create 8 in
       List.iter
         (fun (a : Absint.access_info) ->
           if a.ai_store then
             let r =
               match Hashtbl.find_opt tbl a.ai_arr with
               | Some r -> Interval.join r a.ai_range
               | None -> a.ai_range
             in
             Hashtbl.replace tbl a.ai_arr r)
         summary.Absint.s_accesses;
       tbl)
  in
  license.Vexec.Effects.ef_entries
  |> List.filter_map (fun (e : Vexec.Effects.entry) ->
         if not e.e_write then None
         else if e.e_write_indirect then
           Some
             (Diag.warning ~pass:"effect-escape" ~kernel:(kname df)
                ~pos:(first_store_pos df e.e_array)
                "scatter writes to %s escape any affine region (whole-array \
                 may-write in the effect license)"
                e.e_array)
         else
           match Hashtbl.find_opt (Lazy.force write_range) e.e_array with
           | Some r when not (Interval.is_bounded r) ->
               Some
                 (Diag.warning ~pass:"effect-escape" ~kernel:(kname df)
                    ~pos:(first_store_pos df e.e_array)
                    "may-write region of %s is unbounded at n=%d (widened \
                     subscript range escapes the effect license)"
                    e.e_array Absint.default_n)
           | _ -> None)
