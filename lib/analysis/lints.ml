(* Lint passes over the scalar IR.

   Each pass takes the shared dataflow facts and returns diagnostics.  The
   lints target exactly the defects that skew the paper's cost-model
   features: a dead or redundant instruction changes the instruction-class
   counts the models are fitted over, an out-of-bounds subscript makes the
   simulated measurements meaningless, and an invariant store blocks
   vectorization altogether.

   Severity policy: anything that invalidates measurements or IR semantics
   is an [Error]; shape defects that merely skew features are [Warning];
   stylistic redundancy is [Info]. *)

open Vir

let kname (df : Dataflow.t) = df.kernel.Kernel.name

(* --- dead instruction results ------------------------------------------- *)

(* A non-store instruction whose value never reaches a store or a reduction
   contributes to every instruction-count feature but not to the kernel's
   observable effect. *)
let dead_result (df : Dataflow.t) =
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      if (not (Instr.is_store instr)) && not df.live.(pos) then
        out :=
          Diag.warning ~pass:"dead-result" ~kernel:(kname df) ~pos
            "result r%d is never used by a store or reduction" pos
          :: !out)
    df.body;
  List.rev !out

(* --- redundant loads ----------------------------------------------------- *)

(* Two loads of the same address with no intervening store to that array
   read the same value: a CSE opportunity that inflates the load counts the
   rated features are built from.  Addresses compare syntactically after
   canonicalizing operands through earlier merges, mirroring
   [Simplify.cse]. *)
let redundant_load (df : Dataflow.t) =
  let n = Array.length df.body in
  let seen : (Instr.t, int) Hashtbl.t = Hashtbl.create 8 in
  let store_seen : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let merged = Array.make n None in
  let out = ref [] in
  for pos = 0 to n - 1 do
    let instr =
      Instr.map_operands
        (function
          | Instr.Reg r as op -> (
              match merged.(r) with Some t -> Instr.Reg t | None -> op)
          | op -> op)
        df.body.(pos)
    in
    match instr with
    | Instr.Store { addr; _ } ->
        Hashtbl.replace store_seen (Instr.addr_array addr) pos
    | Instr.Load { addr; _ } -> (
        let arr = Instr.addr_array addr in
        match Hashtbl.find_opt seen instr with
        | Some prev
          when (match Hashtbl.find_opt store_seen arr with
               | Some s -> s < prev
               | None -> true) ->
            merged.(pos) <- Some prev;
            out :=
              Diag.warning ~pass:"redundant-load" ~kernel:(kname df) ~pos
                "load of %s repeats instruction %d with no intervening store"
                arr prev
              :: !out
        | _ -> Hashtbl.replace seen instr pos)
    | _ -> ()
  done;
  List.rev !out

(* --- lossy cast chains ---------------------------------------------------- *)

let lossy_cast (df : Dataflow.t) =
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      match instr with
      | Instr.Cast { src_ty; dst_ty; a } ->
          if Types.equal_scalar src_ty dst_ty then
            out :=
              Diag.info ~pass:"lossy-cast" ~kernel:(kname df) ~pos
                "no-op cast %s -> %s" (Types.to_string src_ty)
                (Types.to_string dst_ty)
              :: !out;
          (match a with
          | Instr.Reg r -> (
              match df.body.(r) with
              | Instr.Cast { src_ty = s0; dst_ty = s1; _ }
                when Types.equal_scalar s1 src_ty ->
                  (* Chain s0 -> s1 -> dst_ty: lossy when the middle type
                     cannot represent every value of the origin type but the
                     destination could. *)
                  let narrows =
                    Types.size_bytes s1 < Types.size_bytes s0
                    || (Types.is_float s0 && Types.is_int s1)
                  in
                  let rewidens =
                    Types.size_bytes dst_ty > Types.size_bytes s1
                    || (Types.is_float dst_ty && Types.is_int s1)
                  in
                  if narrows && rewidens then
                    out :=
                      Diag.warning ~pass:"lossy-cast" ~kernel:(kname df) ~pos
                        "cast chain %s -> %s -> %s loses precision in the \
                         middle type"
                        (Types.to_string s0) (Types.to_string s1)
                        (Types.to_string dst_ty)
                      :: !out
              | _ -> ())
          | _ -> ())
      | _ -> ())
    df.body;
  List.rev !out

(* --- out-of-bounds affine subscripts -------------------------------------- *)

(* Delegates to the witness-size bounds analysis; a violation means the
   simulated traces touch memory the kernel does not own, so it is an
   error. *)
let out_of_bounds (df : Dataflow.t) =
  List.map
    (fun (v : Bounds.violation) ->
      Diag.error ~pass:"out-of-bounds" ~kernel:(kname df) ~pos:v.Bounds.v_pos
        "%s" (Format.asprintf "%a" Bounds.pp_violation v))
    (Bounds.check df.kernel)

(* --- stores to loop-invariant addresses ------------------------------------ *)

(* Writing the same location every iteration makes the loop body
   order-dependent (last write wins) and is exactly what [Llv] rejects with
   [Invariant_store]; flag it before the vectorizer does. *)
let invariant_store (df : Dataflow.t) =
  let out = ref [] in
  Array.iteri
    (fun pos instr ->
      match instr with
      | Instr.Store { addr; _ } when Dataflow.addr_invariant df addr ->
          out :=
            Diag.warning ~pass:"invariant-store" ~kernel:(kname df) ~pos
              "store to %s writes a loop-invariant address (blocks \
               vectorization)"
              (Instr.addr_array addr)
            :: !out
      | _ -> ())
    df.body;
  List.rev !out

(* --- unused declarations ---------------------------------------------------- *)

let unused_array (df : Dataflow.t) =
  let k = df.kernel in
  let accessed = Hashtbl.create 8 in
  Array.iter
    (fun instr ->
      match Instr.accessed_array instr with
      | Some a -> Hashtbl.replace accessed a ()
      | None -> ())
    df.body;
  List.filter_map
    (fun (d : Kernel.array_decl) ->
      if Hashtbl.mem accessed d.arr_name then None
      else
        Some
          (Diag.warning ~pass:"unused-array" ~kernel:(kname df)
             "array %s is declared but never accessed" d.arr_name))
    k.Kernel.arrays

let unused_param (df : Dataflow.t) =
  let k = df.kernel in
  let used = Hashtbl.create 4 in
  let mark_op = function
    | Instr.Param p -> Hashtbl.replace used p ()
    | _ -> ()
  in
  let mark_dim (d : Instr.dim) =
    List.iter (fun (p, _) -> Hashtbl.replace used p ()) d.Instr.pterms
  in
  let mark_addr = function
    | Instr.Affine { dims; _ } -> List.iter mark_dim dims
    | Instr.Indirect { idx; _ } -> mark_op idx
  in
  Array.iter
    (fun instr ->
      List.iter mark_op (Instr.operands instr);
      match instr with
      | Instr.Load { addr; _ } | Instr.Store { addr; _ } -> mark_addr addr
      | _ -> ())
    df.body;
  List.iter (fun (r : Kernel.reduction) -> mark_op r.red_src) k.reductions;
  List.filter_map
    (fun p ->
      if Hashtbl.mem used p then None
      else
        Some
          (Diag.warning ~pass:"unused-param" ~kernel:(kname df)
             "parameter %s is declared but never read" p))
    k.Kernel.params
