(** Lint passes over the scalar IR.  Each consumes the shared dataflow
    facts and returns diagnostics; see [Pass] for the registry. *)

(** Non-store instructions whose value never reaches a store or
    reduction. *)
val dead_result : Dataflow.t -> Diag.t list

(** Repeated loads of the same address with no intervening store to that
    array (CSE opportunities that skew instruction-count features). *)
val redundant_load : Dataflow.t -> Diag.t list

(** Cast chains that narrow and then re-widen (losing precision) and no-op
    casts. *)
val lossy_cast : Dataflow.t -> Diag.t list

(** Statically out-of-bounds affine subscripts, checked against declared
    extents at witness problem sizes (wraps [Vir.Bounds]). *)
val out_of_bounds : Dataflow.t -> Diag.t list

(** Stores whose address is invariant in the innermost loop. *)
val invariant_store : Dataflow.t -> Diag.t list

(** Declared arrays never accessed by the body. *)
val unused_array : Dataflow.t -> Diag.t list

(** Declared scalar parameters never read. *)
val unused_param : Dataflow.t -> Diag.t list

(** Reference vector factor the misalignment lint checks against. *)
val misaligned_vf : int

(** Unit-stride accesses whose congruence proves every vector block at
    [misaligned_vf] starts off-lane. *)
val misaligned_access : Dataflow.t -> Diag.t list

(** Stores whose abstract value range only stabilized through widening:
    loop-carried recurrences with unbounded ranges. *)
val unbounded_recurrence : Dataflow.t -> Diag.t list

(** Stores overwritten by a later identical-address store before any load
    observes them (shares detection with [Opt.dead_stores]). *)
val dead_store : Dataflow.t -> Diag.t list

(** Live values identical on every innermost iteration: hoistable work left
    in the body (what [Opt]'s LICM moves to the preheader prefix). *)
val loop_invariant_compute : Dataflow.t -> Diag.t list

(** Warn, at each constraining dependence's sink, when loop-carried
    dependences cap the legal vectorization factor below the widest width. *)
val loop_carried_at_vf : Dataflow.t -> Diag.t list

(** Warn when the legality verdict rests on the conflict-free-subscripts
    assumption for indirect accesses ([Vdeps.Dependence.needs_runtime_assumption]). *)
val assumed_conflict_free : Dataflow.t -> Diag.t list

(** Error when the effect license may-writes an [Idx]-role array: index
    buffers alias the runtime's Frozen shared master, so a store either
    trips the frozen-write barrier or mutates subscript data. *)
val frozen_buffer_write : Dataflow.t -> Diag.t list

(** Warn when a may-write region escapes the effect license's affine
    regions: scatter (indirect) writes, or affine writes whose abstract
    flat-index range is unbounded after widening. *)
val effect_escape : Dataflow.t -> Diag.t list
