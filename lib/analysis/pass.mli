(** Registry of scalar lint passes. *)

type t = {
  name : string;
  descr : string;
  run : Dataflow.t -> Diag.t list;
}

(** The built-in lints, in reporting order. *)
val builtin : t list

(** Add a pass to the registry; raises [Invalid_argument] on duplicate
    names. *)
val register : t -> unit

val all : unit -> t list
val find : string -> t option

(** Run one pass standalone (computes the dataflow facts itself). *)
val run_pass : t -> Vir.Kernel.t -> Diag.t list

(** Run every registered pass over one shared dataflow analysis. *)
val run_all : Vir.Kernel.t -> Diag.t list
