(* Dataflow facts over the SSA-by-position scalar body.

   Because a body is a single basic block in SSA-by-position form, the
   classic iterative dataflow problems collapse to one forward sweep
   (reaching constants, innermost-loop invariance) and one backward sweep
   (liveness towards the kernel's observable effects: stores and
   reductions).  The lint passes consume these facts rather than recomputing
   them. *)

open Vir

type const = Cint of int | Cfloat of float

type t = {
  kernel : Kernel.t;
  body : Instr.t array;
  users : int list array;
      (* positions whose operands read register [r], in body order *)
  reduction_uses : int array;  (* times register [r] feeds a reduction *)
  live : bool array;
      (* value transitively reaches a store or a reduction *)
  consts : const option array;  (* reaching-constant value, if static *)
  invariant : bool array;
      (* value is the same on every iteration of the innermost loop *)
}

let use_count t r = List.length t.users.(r) + t.reduction_uses.(r)

(* --- constant propagation ------------------------------------------------ *)

let fold_binop_float op a b =
  match op with
  | Op.Add -> Some (a +. b)
  | Op.Sub -> Some (a -. b)
  | Op.Mul -> Some (a *. b)
  | Op.Div when b <> 0.0 -> Some (a /. b)
  | Op.Min -> Some (Float.min a b)
  | Op.Max -> Some (Float.max a b)
  | _ -> None

let fold_binop_int op a b =
  match op with
  | Op.Add -> Some (a + b)
  | Op.Sub -> Some (a - b)
  | Op.Mul -> Some (a * b)
  | Op.Div when b <> 0 -> Some (a / b)
  | Op.Rem when b <> 0 -> Some (a mod b)
  | Op.Min -> Some (min a b)
  | Op.Max -> Some (max a b)
  | Op.And -> Some (a land b)
  | Op.Or -> Some (a lor b)
  | Op.Xor -> Some (a lxor b)
  | Op.Shl -> Some (a lsl (b land 63))
  | Op.Shr -> Some (a asr (b land 63))
  | _ -> None

let fold_unop_float op a =
  match op with
  | Op.Neg -> Some (-.a)
  | Op.Abs -> Some (abs_float a)
  | Op.Sqrt when a >= 0.0 -> Some (sqrt a)
  | _ -> None

let fold_unop_int op a =
  match op with
  | Op.Neg -> Some (-a)
  | Op.Abs -> Some (abs a)
  | Op.Not -> Some (lnot a)
  | _ -> None

(* --- analysis ------------------------------------------------------------ *)

let analyze (k : Kernel.t) : t =
  let body = Array.of_list k.Kernel.body in
  let n = Array.length body in
  let users = Array.make n [] in
  let reduction_uses = Array.make n 0 in
  let live = Array.make n false in
  let consts = Array.make n None in
  let invariant = Array.make n false in
  let inner = Kernel.innermost k in
  (* Def-use chains. *)
  Array.iteri
    (fun pos instr ->
      List.iter
        (fun r -> if r >= 0 && r < n then users.(r) <- pos :: users.(r))
        (Instr.reg_uses instr))
    body;
  Array.iteri (fun r us -> users.(r) <- List.rev us) users;
  List.iter
    (fun (red : Kernel.reduction) ->
      match red.red_src with
      | Instr.Reg r when r >= 0 && r < n ->
          reduction_uses.(r) <- reduction_uses.(r) + 1
      | _ -> ())
    k.reductions;
  (* Liveness: backward reachability from the observable effects. *)
  let worklist = ref [] in
  let mark r =
    if r >= 0 && r < n && not live.(r) then begin
      live.(r) <- true;
      worklist := r :: !worklist
    end
  in
  Array.iteri
    (fun pos instr ->
      if Instr.is_store instr then begin
        live.(pos) <- true;
        List.iter mark (Instr.reg_uses instr)
      end)
    body;
  Array.iteri (fun r c -> if c > 0 then mark r) reduction_uses;
  let rec drain () =
    match !worklist with
    | [] -> ()
    | r :: rest ->
        worklist := rest;
        List.iter mark (Instr.reg_uses body.(r));
        drain ()
  in
  drain ();
  (* Whether any store in the body writes [arr]; a load from an unwritten
     array yields the same value whenever its address repeats. *)
  let written = Hashtbl.create 4 in
  Array.iter
    (fun instr ->
      match instr with
      | Instr.Store { addr; _ } ->
          Hashtbl.replace written (Instr.addr_array addr) ()
      | _ -> ())
    body;
  (* Forward sweep: reaching constants and innermost-loop invariance. *)
  let dim_invariant (d : Instr.dim) =
    not (List.mem_assoc inner.Kernel.var d.Instr.terms)
  in
  let operand_const = function
    | Instr.Imm_int i -> Some (Cint i)
    | Instr.Imm_float f -> Some (Cfloat f)
    | Instr.Reg r when r >= 0 && r < n -> consts.(r)
    | Instr.Reg _ | Instr.Index _ | Instr.Param _ -> None
  in
  let operand_invariant = function
    | Instr.Imm_int _ | Instr.Imm_float _ | Instr.Param _ -> true
    | Instr.Index v -> not (String.equal v inner.Kernel.var)
    | Instr.Reg r -> r >= 0 && r < n && invariant.(r)
  in
  let addr_invariant = function
    | Instr.Affine { dims; _ } -> List.for_all dim_invariant dims
    | Instr.Indirect { idx; _ } -> operand_invariant idx
  in
  Array.iteri
    (fun pos instr ->
      (consts.(pos) <-
         (match instr with
         | Instr.Bin { ty; op; a; b } -> (
             match (operand_const a, operand_const b) with
             | Some (Cfloat x), Some (Cfloat y) when Types.is_float ty ->
                 Option.map (fun v -> Cfloat v) (fold_binop_float op x y)
             | Some (Cint x), Some (Cint y) when Types.is_int ty ->
                 Option.map (fun v -> Cint v) (fold_binop_int op x y)
             | _ -> None)
         | Instr.Una { ty; op; a } -> (
             match operand_const a with
             | Some (Cfloat x) when Types.is_float ty ->
                 Option.map (fun v -> Cfloat v) (fold_unop_float op x)
             | Some (Cint x) when Types.is_int ty ->
                 Option.map (fun v -> Cint v) (fold_unop_int op x)
             | _ -> None)
         | Instr.Cast { dst_ty; a; _ } -> (
             match (operand_const a, Types.is_float dst_ty) with
             | Some (Cfloat f), true -> Some (Cfloat f)
             | Some (Cint i), true -> Some (Cfloat (float_of_int i))
             | Some (Cint i), false -> Some (Cint i)
             | Some (Cfloat f), false -> Some (Cint (int_of_float f))
             | None, _ -> None)
         | Instr.Fma { a; b; c; _ } -> (
             match (operand_const a, operand_const b, operand_const c) with
             | Some (Cfloat x), Some (Cfloat y), Some (Cfloat z) ->
                 Some (Cfloat ((x *. y) +. z))
             | _ -> None)
         | Instr.Cmp _ | Instr.Select _ | Instr.Load _ | Instr.Store _ -> None));
      invariant.(pos) <-
        (match instr with
        | Instr.Load { addr; _ } ->
            (* Invariant only when the location is fixed across the innermost
               loop and nothing in the body can overwrite it. *)
            addr_invariant addr
            && not (Hashtbl.mem written (Instr.addr_array addr))
        | Instr.Store _ -> false
        | Instr.Bin _ | Instr.Una _ | Instr.Fma _ | Instr.Cmp _
        | Instr.Select _ | Instr.Cast _ ->
            List.for_all operand_invariant (Instr.operands instr)))
    body;
  { kernel = k; body; users; reduction_uses; live; consts; invariant }

let operand_invariant t = function
  | Instr.Imm_int _ | Instr.Imm_float _ | Instr.Param _ -> true
  | Instr.Index v ->
      not (String.equal v (Kernel.innermost t.kernel).Kernel.var)
  | Instr.Reg r -> r >= 0 && r < Array.length t.body && t.invariant.(r)

let addr_invariant t = function
  | Instr.Affine { dims; _ } ->
      let inner = Kernel.innermost t.kernel in
      List.for_all
        (fun (d : Instr.dim) ->
          not (List.mem_assoc inner.Kernel.var d.Instr.terms))
        dims
  | Instr.Indirect { idx; _ } -> operand_invariant t idx
