(** Dependence reporting ([vecmodel deps]) and the empirical soundness gate
    cross-checking the legality oracle against the translation validator
    plus the reference interpreter. *)

open Vir

(** One kernel's dependence story: the nest-wide graph and the legality
    verdict space (with idiom tags). *)
type summary = {
  s_kernel : string;
  s_graph : Vdeps.Depgraph.t;
  s_legality : Vdeps.Legality.t;
}

val summarize : ?vfs:int list -> Kernel.t -> summary

(** Registry-order-preserving parallel fan-out. *)
val summarize_kernels : ?vfs:int list -> Kernel.t list -> summary list

(** Deterministic JSON (edges are already canonically sorted). *)
val summary_to_json : summary -> string

val summaries_to_json : summary list -> string
val print_summary : out_channel -> summary -> unit

(** Verdict for one (kernel, transform, VF) configuration of the
    cross-check.  [False_positive] — the oracle admitted a configuration
    the validator refutes — is the only soundness failure. *)
type verdict =
  | True_positive
  | False_positive
  | False_negative
  | True_negative
  | Inapplicable of string

type config = {
  c_kernel : string;
  c_transform : Driver.transform;
  c_vf : int;
  c_verdict : verdict;
}

(** Multiset translation validation AND interpreter equivalence at each
    size (reductions compared with relative tolerance). *)
val validates : ?sizes:int list -> Kernel.t -> Vvect.Vinstr.vkernel -> bool

val check_config :
  ?sizes:int list -> Kernel.t -> Driver.transform -> vf:int -> verdict

val default_vfs : int list
val crosscheck_kernel : ?sizes:int list -> ?vfs:int list -> Kernel.t -> config list

(** Parallel registry-wide sweep over LLV and SLP at every factor. *)
val crosscheck :
  ?sizes:int list -> ?vfs:int list -> Kernel.t list -> config list

type stats = {
  st_tp : int;
  st_fp : int;
  st_fn : int;
  st_tn : int;
  st_inapplicable : int;
}

val stats : config list -> stats

(** Fraction of oracle-admitted configurations the validator confirms;
    soundness demands 1.0. *)
val precision : stats -> float

(** Fraction of actually-safe configurations the oracle admits. *)
val recall : stats -> float

val sound : config list -> bool
val failures : config list -> config list
val config_to_string : config -> string
