(* Structured diagnostics shared by every analysis pass.

   A diagnostic ties a finding to the pass that produced it, a severity, and
   (when it concerns one instruction) a body position, so that callers can
   filter, count, render for humans or serialize to JSON without parsing
   message strings. *)

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* Errors sort first so the most urgent findings lead every report. *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  pass : string;  (* registered pass name, e.g. "dead-result" *)
  severity : severity;
  kernel : string;
  pos : int option;  (* body position the finding anchors to, if any *)
  message : string;
}

let make ~pass ~severity ~kernel ?pos fmt =
  Printf.ksprintf
    (fun message -> { pass; severity; kernel; pos; message })
    fmt

let error ~pass ~kernel ?pos fmt = make ~pass ~severity:Error ~kernel ?pos fmt
let warning ~pass ~kernel ?pos fmt = make ~pass ~severity:Warning ~kernel ?pos fmt
let info ~pass ~kernel ?pos fmt = make ~pass ~severity:Info ~kernel ?pos fmt

let is_error d = d.severity = Error

let count_errors ds = List.length (List.filter is_error ds)

(* Stable order: severity, then position, then pass name. *)
let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let pa = Option.value a.pos ~default:max_int in
        let pb = Option.value b.pos ~default:max_int in
        let c = compare pa pb in
        if c <> 0 then c else String.compare a.pass b.pass)
    ds

(* Canonical order for rendered reports: keyed on every field, with
   duplicates collapsed, so output is byte-identical however the producing
   passes were scheduled. *)
let canonical ds =
  let key d =
    ( d.kernel,
      Option.value d.pos ~default:max_int,
      d.pass,
      severity_rank d.severity,
      d.message )
  in
  List.sort_uniq (fun a b -> compare (key a) (key b)) ds

let to_string d =
  Printf.sprintf "%s: %s: [%s]%s %s" d.kernel
    (severity_to_string d.severity)
    d.pass
    (match d.pos with Some p -> Printf.sprintf " instr %d:" p | None -> "")
    d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

(* --- JSON -------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"pass\":\"%s\",\"severity\":\"%s\",\"kernel\":\"%s\",\"pos\":%s,\"message\":\"%s\"}"
    (json_escape d.pass)
    (severity_to_string d.severity)
    (json_escape d.kernel)
    (match d.pos with Some p -> string_of_int p | None -> "null")
    (json_escape d.message)

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"
