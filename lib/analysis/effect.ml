(* Effect & ownership analysis.

   [analyze] computes a per-kernel effect summary: the may-read/may-write
   effect license the runtime consumes ([Vexec.Effects], the projection
   that decides which buffers may alias the process-wide frozen masters),
   refined with affine region info — per-(array, direction) flat-index
   intervals from the abstract interpreter — and with the relational
   domain's parametric in-bounds verdicts.

   [crosscheck] is the empirical soundness gate, mirroring
   [Depsreport.crosscheck]: for every (transform, VF) configuration over
   LLV, SLP and unroll, the transformed kernel's effects must stay inside
   the source summary.  Statically, a walker over the vector IR (or the
   unrolled scalar body) must be subsumed by the source license; for
   oracle-legal configurations the transformed kernel is additionally
   *run* with the interpreter's access trace installed, and every
   observed access must hit a licensed (array, direction) inside its
   static region.  Any escape is a soundness failure: it means the
   ownership decisions derived from the source summary would have been
   wrong for the code the backend actually executes. *)

open Vir
module E = Vexec.Effects
module L = Vdeps.Legality

(* --- summaries ------------------------------------------------------------ *)

type region = {
  r_array : string;
  r_write : bool;
  r_range : Interval.t;  (* flat-index interval at the analysis size *)
}

type summary = {
  e_kernel : Kernel.t;
  e_n : int;  (* problem size the regions were computed at *)
  e_license : E.t;
  e_regions : region list;  (* sorted by (array, write) *)
  e_rel_safe : int;  (* accesses proved in-bounds parametrically (Rel) *)
  e_rel_total : int;
}

(* Join the abstract interpreter's per-access flat-index ranges into one
   region per (array, direction). *)
let regions ~n k =
  let s = Absint.analyze ~n k in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (a : Absint.access_info) ->
      let key = (a.ai_arr, a.ai_store) in
      let r =
        match Hashtbl.find_opt tbl key with
        | Some r -> Interval.join r a.ai_range
        | None -> a.ai_range
      in
      Hashtbl.replace tbl key r)
    s.Absint.s_accesses;
  Hashtbl.fold
    (fun (arr, write) range acc ->
      { r_array = arr; r_write = write; r_range = range } :: acc)
    tbl []
  |> List.sort (fun a b -> compare (a.r_array, a.r_write) (b.r_array, b.r_write))

let analyze ?(n = Absint.default_n) (k : Kernel.t) =
  let rel = Rel.analyze k in
  let safe =
    List.length
      (List.filter
         (fun (r : Rel.access_report) ->
           match r.ar_verdict with Rel.Safe _ -> true | Rel.Unknown _ -> false)
         rel)
  in
  {
    e_kernel = k;
    e_n = n;
    e_license = E.of_kernel k;
    e_regions = regions ~n k;
    e_rel_safe = safe;
    e_rel_total = List.length rel;
  }

(* Kernels are independent; parallel_map keeps registry order. *)
let analyze_kernels ?n ks = Vpar.Pool.parallel_map (analyze ?n) ks

let ownership s name = E.ownership s.e_license name

let region s ~array ~write =
  List.find_opt (fun r -> String.equal r.r_array array && r.r_write = write)
    s.e_regions

(* --- transformed effects --------------------------------------------------- *)

(* Effect summary of a vectorized kernel's wide body (the scalar epilogue
   executes the source body, whose effects are the source summary by
   construction).  Entries cover the scalar kernel's arrays, like
   [Effects.of_kernel], so [Effects.subsumes] compares like with like. *)
let vkernel_effects (vk : Vvect.Vinstr.vkernel) : E.t =
  let flags = Hashtbl.create 8 in
  let touch ~write ~indirect name =
    let r, w, ri, wi =
      match Hashtbl.find_opt flags name with
      | Some f -> f
      | None ->
          let f = (ref false, ref false, ref false, ref false) in
          Hashtbl.replace flags name f;
          f
    in
    if write then begin
      w := true;
      if indirect then wi := true
    end
    else begin
      r := true;
      if indirect then ri := true
    end
  in
  let scalar_instr (i : Instr.t) =
    match i with
    | Load { addr; _ } ->
        touch ~write:false
          ~indirect:(match addr with Indirect _ -> true | Affine _ -> false)
          (Instr.addr_array addr)
    | Store { addr; _ } ->
        touch ~write:true
          ~indirect:(match addr with Indirect _ -> true | Affine _ -> false)
          (Instr.addr_array addr)
    | Bin _ | Una _ | Fma _ | Cmp _ | Select _ | Cast _ -> ()
  in
  let rec walk = function
    | [] -> ()
    | (v : Vvect.Vinstr.t) :: rest ->
        (match v with
        | Vload { arr; _ } -> touch ~write:false ~indirect:false arr
        | Vstore { arr; _ } -> touch ~write:true ~indirect:false arr
        | Vgather { arr; _ } -> touch ~write:false ~indirect:true arr
        | Vscatter { arr; _ } -> touch ~write:true ~indirect:true arr
        | Sc { instr; _ } -> scalar_instr instr
        | Vbin _ | Vuna _ | Vfma _ | Vcmp _ | Vselect _ | Viota _ | Vcast _
        | Vpack _ | Vextract _ ->
            ());
        walk rest
  in
  walk vk.Vvect.Vinstr.vbody;
  let entries =
    List.map
      (fun (d : Kernel.array_decl) ->
        match Hashtbl.find_opt flags d.arr_name with
        | Some (r, w, ri, wi) ->
            {
              E.e_array = d.arr_name;
              e_read = !r;
              e_write = !w;
              e_read_indirect = !ri;
              e_write_indirect = !wi;
            }
        | None ->
            {
              E.e_array = d.arr_name;
              e_read = false;
              e_write = false;
              e_read_indirect = false;
              e_write_indirect = false;
            })
      vk.Vvect.Vinstr.scalar.Kernel.arrays
    |> List.sort (fun (a : E.entry) b -> String.compare a.E.e_array b.E.e_array)
  in
  { E.ef_kernel = vk.Vvect.Vinstr.scalar.Kernel.name; ef_entries = entries }

(* --- observed traces ------------------------------------------------------- *)

(* Observed access footprint of one run: (array, is_write) -> index range. *)
type observed = (string * bool, int ref * int ref) Hashtbl.t

let observe run : (observed, string) result =
  let tbl : observed = Hashtbl.create 16 in
  let on_access arr idx write =
    let key = (arr, write) in
    match Hashtbl.find_opt tbl key with
    | Some (lo, hi) ->
        if idx < !lo then lo := idx;
        if idx > !hi then hi := idx
    | None -> Hashtbl.replace tbl key (ref idx, ref idx)
  in
  match run on_access with
  | () -> Ok tbl
  | exception e -> Error (Printexc.to_string e)

let observe_vkernel ~seed ~n (vk : Vvect.Vinstr.vkernel) =
  observe (fun on_access ->
      let env = Vinterp.Env.create ~seed ~n vk.Vvect.Vinstr.scalar in
      Vinterp.Env.set_trace env on_access;
      let r = Vvect.Vexec.run_in env vk in
      Vinterp.Env.clear_trace env;
      ignore r)

let observe_kernel ~seed ~n (k : Kernel.t) =
  observe (fun on_access ->
      let env = Vinterp.Env.create ~seed ~n k in
      Vinterp.Env.set_trace env on_access;
      let r = Vinterp.Interp.run_in env k in
      Vinterp.Env.clear_trace env;
      ignore r)

(* Every observed access must be licensed by the summary and fall inside
   its static region at this size.  Unbounded (widened) regions place no
   index obligation — the license flags still apply.  Violations are
   returned sorted, so reports are deterministic. *)
let contained ~license ~regions:regs (tbl : observed) =
  let viol = ref [] in
  Hashtbl.iter
    (fun (arr, write) (lo, hi) ->
      let dir = if write then "write" else "read" in
      let licensed =
        if write then E.may_write license arr else E.may_read license arr
      in
      if not licensed then
        viol :=
          Printf.sprintf "unlicensed %s of %s ([%d,%d])" dir arr !lo !hi
          :: !viol
      else
        match
          List.find_opt
            (fun r -> String.equal r.r_array arr && r.r_write = write)
            regs
        with
        | Some r when Interval.is_bounded r.r_range ->
            if
              not
                (Interval.contains_int r.r_range !lo
                && Interval.contains_int r.r_range !hi)
            then
              viol :=
                Printf.sprintf
                  "%s of %s at [%d,%d] escapes static region %s" dir arr !lo
                  !hi
                  (Interval.to_string r.r_range)
                :: !viol
        | _ -> ())
    tbl;
  List.sort String.compare !viol

(* --- the cross-check ------------------------------------------------------- *)

type verdict =
  | Stable  (* static containment holds; trace containment too, if legal *)
  | Escape of string  (* transformed effects escape the source summary *)
  | Inapplicable of string  (* transform failed for a structural reason *)

type config = {
  c_kernel : string;
  c_transform : Driver.transform;
  c_vf : int;
  c_legal : bool;  (* whether the legality oracle admits the config *)
  c_verdict : verdict;
}

let trace_sizes = Equiv.semantic_sizes
let trace_seed = 42

(* Trace containment at every size in [sizes].  [run_t ~n] executes the
   transformed kernel under an installed access trace.  A size where the
   *source* kernel has no reference behaviour is skipped, as in
   [Depsreport.validates]; a transformed run that traps where the source
   does not is itself an escape. *)
let trace_check ~sizes ~license k run_t =
  let rec go = function
    | [] -> Stable
    | n :: rest -> (
        match Vinterp.Interp.run ~seed:trace_seed ~n k with
        | exception _ -> go rest (* no reference behaviour at this size *)
        | _ -> (
            match run_t ~n with
            | Error e -> Escape (Printf.sprintf "n=%d: run trapped: %s" n e)
            | Ok tbl -> (
                match contained ~license ~regions:(regions ~n k) tbl with
                | [] -> go rest
                | v :: _ -> Escape (Printf.sprintf "n=%d: %s" n v))))
  in
  go sizes

let check_config ?(sizes = trace_sizes) (k : Kernel.t)
    (tr : Driver.transform) ~vf : bool * verdict =
  let license = E.of_kernel k in
  let static_then_trace ?(sizes = sizes) ~legal sub run_t =
    if not (E.subsumes ~summary:license sub) then
      ( legal,
        Escape
          (Printf.sprintf "static: transformed effects [%s] escape [%s]"
             (E.to_string sub) (E.to_string license)) )
    else if not legal then (legal, Stable)
      (* forced-illegal configurations carry the static obligation only:
         their runtime semantics are not the source's, so an observed
         trace would compare apples to oranges *)
    else (legal, trace_check ~sizes ~license k run_t)
  in
  match tr with
  | Driver.Tllv -> (
      let legal = L.llv_ok k ~vf in
      match Vvect.Llv.vectorize ~vf ~force:true k with
      | Error e -> (legal, Inapplicable (Vvect.Llv.error_to_string e))
      | Ok vk ->
          static_then_trace ~legal (vkernel_effects vk) (fun ~n ->
              observe_vkernel ~seed:trace_seed ~n vk))
  | Driver.Tslp -> (
      let legal = L.slp_ok k ~vf in
      match Vvect.Slp.vectorize ~vf ~force:true k with
      | Error e -> (legal, Inapplicable (Vvect.Slp.error_to_string e))
      | Ok vk ->
          static_then_trace ~legal (vkernel_effects vk) (fun ~n ->
              observe_vkernel ~seed:trace_seed ~n vk))
  | Driver.Tunroll ->
      let u = Vvect.Unroll.by vf k in
      (* The unroller suffixes the kernel name; the effect obligation is
         against the *source* summary, so analyze the unrolled body under
         the source name. *)
      let sub = E.of_kernel { u with Kernel.name = k.Kernel.name } in
      (* Unrolling is only an exact transformation at sizes where the
         innermost trip divides the factor — elsewhere the unrolled body
         overshoots the source iteration space by construction, which is
         an artefact of the size, not an effect escape.  Trace at the
         nearest exact size at or above each requested one. *)
      let exact_sizes =
        List.sort_uniq compare
          (List.filter_map
             (fun n ->
               let rec find m =
                 if m > n + (8 * vf) then None
                 else if Vvect.Unroll.exact_for ~n:m k vf then Some m
                 else find (m + 1)
               in
               find n)
             sizes)
      in
      static_then_trace ~sizes:exact_sizes ~legal:true sub (fun ~n ->
          observe_kernel ~seed:trace_seed ~n u)

let default_vfs = Driver.default_vfs

let crosscheck_kernel ?sizes ?(vfs = default_vfs) (k : Kernel.t) : config list
    =
  List.concat_map
    (fun tr ->
      List.map
        (fun vf ->
          let legal, verdict = check_config ?sizes k tr ~vf in
          {
            c_kernel = k.Kernel.name;
            c_transform = tr;
            c_vf = vf;
            c_legal = legal;
            c_verdict = verdict;
          })
        vfs)
    Driver.all_transforms

let crosscheck ?sizes ?vfs ks =
  List.concat (Vpar.Pool.parallel_map (crosscheck_kernel ?sizes ?vfs) ks)

type stats = { st_stable : int; st_escape : int; st_inapplicable : int }

let stats configs =
  List.fold_left
    (fun st c ->
      match c.c_verdict with
      | Stable -> { st with st_stable = st.st_stable + 1 }
      | Escape _ -> { st with st_escape = st.st_escape + 1 }
      | Inapplicable _ ->
          { st with st_inapplicable = st.st_inapplicable + 1 })
    { st_stable = 0; st_escape = 0; st_inapplicable = 0 }
    configs

(* Of the applicable configurations, the fraction whose transformed
   effects stay inside the source summary.  Soundness demands 1.0. *)
let precision st =
  if st.st_stable + st.st_escape = 0 then 1.0
  else
    float_of_int st.st_stable /. float_of_int (st.st_stable + st.st_escape)

let sound configs =
  List.for_all
    (fun c -> match c.c_verdict with Escape _ -> false | _ -> true)
    configs

let failures configs =
  List.filter
    (fun c -> match c.c_verdict with Escape _ -> true | _ -> false)
    configs

let config_to_string c =
  let v =
    match c.c_verdict with
    | Stable -> "stable"
    | Escape why -> "EFFECT ESCAPE: " ^ why
    | Inapplicable why -> "inapplicable: " ^ why
  in
  Printf.sprintf "%s %s vf=%d%s: %s" c.c_kernel
    (Driver.transform_to_string c.c_transform)
    c.c_vf
    (if c.c_legal then "" else " (illegal, forced)")
    v

(* --- rendering ------------------------------------------------------------- *)

let interval_json (iv : Interval.t) =
  if not (Interval.is_bounded iv) then "null"
  else Printf.sprintf "[%g,%g]" iv.Interval.lo iv.Interval.hi

let entry_json s (e : E.entry) =
  let reg write =
    match region s ~array:e.E.e_array ~write with
    | Some r -> interval_json r.r_range
    | None -> "null"
  in
  Printf.sprintf
    "{\"array\":\"%s\",\"read\":%b,\"write\":%b,\"read_indirect\":%b,\
     \"write_indirect\":%b,\"ownership\":\"%s\",\"read_region\":%s,\
     \"write_region\":%s}"
    (Diag.json_escape e.E.e_array)
    e.E.e_read e.E.e_write e.E.e_read_indirect e.E.e_write_indirect
    (match ownership s e.E.e_array with
    | Vinterp.Env.Frozen -> "frozen"
    | Vinterp.Env.Owned -> "owned")
    (reg false) (reg true)

(* Entries and regions are sorted at construction, so the JSON is
   byte-stable whatever the worker count. *)
let summary_to_json s =
  Printf.sprintf
    "{\"kernel\":\"%s\",\"n\":%d,\"rel_safe\":%d,\"rel_total\":%d,\
     \"effects\":[%s]}"
    (Diag.json_escape s.e_kernel.Kernel.name)
    s.e_n s.e_rel_safe s.e_rel_total
    (String.concat "," (List.map (entry_json s) s.e_license.E.ef_entries))

let summaries_to_json ss =
  "[" ^ String.concat "," (List.map summary_to_json ss) ^ "]"

let print_summary oc s =
  Printf.fprintf oc "%s: %d array(s), rel %d/%d safe (n=%d)\n"
    s.e_kernel.Kernel.name
    (List.length s.e_license.E.ef_entries)
    s.e_rel_safe s.e_rel_total s.e_n;
  List.iter
    (fun (e : E.entry) ->
      let flags = E.entry_to_string e in
      let own =
        match ownership s e.E.e_array with
        | Vinterp.Env.Frozen -> "frozen"
        | Vinterp.Env.Owned -> "owned"
      in
      let reg write label =
        match region s ~array:e.E.e_array ~write with
        | Some r when Interval.is_bounded r.r_range ->
            Printf.sprintf " %s %s" label (Interval.to_string r.r_range)
        | _ -> ""
      in
      Printf.fprintf oc "  %-14s %-6s%s%s\n" flags own (reg false "r")
        (reg true "w"))
    s.e_license.E.ef_entries
