(* Static safety certificates.

   A certificate is the bridge between the relational domain ([Rel]) and
   the execution tier: per access it records safe / unsafe / unknown plus
   the proving constraint (or refuting witness), and projects to a
   [Vexec.License.t] that [Vexec.Closure.run_bound] consults to select the
   unchecked body once per kernel instead of re-deriving intervals on
   every bind.

   Verdict composition:

   - [Rel.Safe]    -> [Vsafe]   (parametric proof, reason = the constraint);
   - [Bounds.classify] [Proven] -> [Vunsafe] (exact corner evaluation at
     witness sizes; the reason carries the concrete witness).  A [Vunsafe]
     refutation beats a [Rel.Safe] claim — they cannot coexist for a sound
     domain, and keeping the refutation makes a seeded-unsound domain
     visible to the tests rather than licensing a trap;
   - otherwise     -> [Vunknown] (the guarded path and the bind-time
     interval check remain in charge).

   Alignment at the certificate's vector factor rides along from the
   congruence domain for the lint layer; it never licenses anything. *)

open Vir
module Env = Vinterp.Env

type verdict = Vsafe | Vunsafe | Vunknown

let verdict_to_string = function
  | Vsafe -> "safe"
  | Vunsafe -> "unsafe"
  | Vunknown -> "unknown"

type align = Al_aligned | Al_misaligned of int | Al_unknown

let align_to_string = function
  | Al_aligned -> "aligned"
  | Al_misaligned r -> Printf.sprintf "misaligned(residue %d)" r
  | Al_unknown -> "unknown"

type access_cert = {
  ac_id : int;
  ac_pos : int;
  ac_array : string;
  ac_store : bool;
  ac_indirect : bool;
  ac_verdict : verdict;
  ac_reason : string;
  ac_align : align;
}

type t = {
  ct_kernel : string;
  ct_vf : int;
  ct_accesses : access_cert array;
  ct_guard_free : bool;
  ct_safe : int;
  ct_unsafe : int;
}

let default_vf = 4

let certify ?(vf = default_vf) (k : Kernel.t) =
  let reports = Rel.analyze k in
  (* Witness-backed refutations by body position; [Proven] only — a
     [Possible] violation depends on parameter values the contract allows,
     which the relational proof already quantifies over. *)
  let refuted : (int, Bounds.violation) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (c : Bounds.classified) ->
      match c.c_verdict with
      | Bounds.Proven ->
          if not (Hashtbl.mem refuted c.c_violation.v_pos) then
            Hashtbl.add refuted c.c_violation.v_pos c.c_violation
      | Bounds.Possible -> ())
    (Bounds.classify k);
  let body = Array.of_list k.body in
  let align_of pos =
    match body.(pos) with
    | Instr.Load { addr = Instr.Affine { dims; _ }; _ }
    | Instr.Store { addr = Instr.Affine { dims; _ }; _ } -> (
        let c = Absint.flat_congr ~vf ~n:Absint.default_n k dims in
        match Congr.residue_mod c ~k:vf with
        | Some 0 -> Al_aligned
        | Some r -> Al_misaligned r
        | None -> Al_unknown)
    | _ -> Al_unknown
  in
  let accesses =
    List.map
      (fun (r : Rel.access_report) ->
        let verdict, reason =
          match Hashtbl.find_opt refuted r.ar_pos with
          | Some v ->
              ( Vunsafe,
                Printf.sprintf "out of bounds at n=%d: %s[%d] vs extent %d"
                  v.Bounds.v_n v.Bounds.v_array v.Bounds.v_index
                  v.Bounds.v_extent )
          | None -> (
              match r.ar_verdict with
              | Rel.Safe why -> (Vsafe, why)
              | Rel.Unknown why -> (Vunknown, why))
        in
        {
          ac_id = r.ar_id;
          ac_pos = r.ar_pos;
          ac_array = r.ar_array;
          ac_store = r.ar_store;
          ac_indirect = r.ar_indirect;
          ac_verdict = verdict;
          ac_reason = reason;
          ac_align = align_of r.ar_pos;
        })
      reports
    |> Array.of_list
  in
  let safe =
    Array.fold_left
      (fun n a -> if a.ac_verdict = Vsafe then n + 1 else n)
      0 accesses
  in
  let unsafe =
    Array.fold_left
      (fun n a -> if a.ac_verdict = Vunsafe then n + 1 else n)
      0 accesses
  in
  (* Guard-free means the unchecked body may run: every affine access is
     proven (indirect accesses keep their guards in the unchecked body, so
     their verdicts do not gate the license — see [Vexec.License]). *)
  let guard_free =
    Array.for_all (fun a -> a.ac_indirect || a.ac_verdict = Vsafe) accesses
  in
  {
    ct_kernel = k.Kernel.name;
    ct_vf = vf;
    ct_accesses = accesses;
    ct_guard_free = guard_free;
    ct_safe = safe;
    ct_unsafe = unsafe;
  }

let safe_frac (c : t) =
  let total = Array.length c.ct_accesses in
  if total = 0 then 1.0 else float_of_int c.ct_safe /. float_of_int total

let license (c : t) =
  Vexec.License.make ~kernel:c.ct_kernel
    (Array.map
       (fun a ->
         match a.ac_verdict with
         | Vsafe -> Vexec.License.Safe
         | Vunsafe -> Vexec.License.Unsafe
         | Vunknown -> Vexec.License.Unknown)
       c.ct_accesses)

(* Number of accesses the certificate licenses to run unguarded: for a
   guard-free kernel that is every proven access (indirect [Vsafe]
   accesses count too — the proof retires their guard logically even
   though the compiled body keeps it). *)
let static_guard_free (c : t) = if c.ct_guard_free then c.ct_safe else 0

(* The bind-time baseline: how many accesses [Closure.affine_safe] alone
   licenses for the default environment at problem size [n].  All-or-
   nothing per kernel, affine accesses only. *)
let bind_time_guard_free ?(n = 1024) (k : Kernel.t) =
  let prog = Vexec.Program.lower k in
  let st = Vexec.Flat.create prog in
  let env = Env.create ~n k in
  Vexec.Flat.bind st env;
  if Vexec.Closure.affine_safe st then
    Array.fold_left
      (fun acc (a : Vexec.Program.access) ->
        if a.Vexec.Program.acc_ind < 0 then acc + 1 else acc)
      0 prog.Vexec.Program.accesses
  else 0

(* --- deterministic JSON -------------------------------------------------- *)

let to_json (c : t) =
  let b = Buffer.create 512 in
  let esc = Diag.json_escape in
  Buffer.add_string b
    (Printf.sprintf
       "{\"kernel\":\"%s\",\"vf\":%d,\"guard_free\":%b,\"safe\":%d,\"unsafe\":%d,\"accesses\":["
       (esc c.ct_kernel) c.ct_vf c.ct_guard_free c.ct_safe c.ct_unsafe);
  Array.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":%d,\"pos\":%d,\"array\":\"%s\",\"store\":%b,\"indirect\":%b,\"verdict\":\"%s\",\"align\":\"%s\",\"reason\":\"%s\"}"
           a.ac_id a.ac_pos (esc a.ac_array) a.ac_store a.ac_indirect
           (verdict_to_string a.ac_verdict)
           (align_to_string a.ac_align)
           (esc a.ac_reason)))
    c.ct_accesses;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- batch + soundness gate ---------------------------------------------- *)

let certify_batch ?vf kernels =
  Vpar.Pool.parallel_map (fun k -> (k, certify ?vf k)) kernels

type gate = {
  g_kernels : int;
  g_accesses : int;
  g_safe : int;
  g_unsafe : int;
  g_guard_free : int;  (* kernels licensed to skip the per-bind check *)
  g_bind_time : int;  (* accesses the bind-time interval check licenses *)
  g_failures : string list;  (* empty = gate passes *)
}

let gate_sizes = [ 64; 257 ]

(* Execute one guard-free kernel under its license and cross-check against
   the reference interpreter.  Any divergence is an unsound certificate:
   either the bind-time check refuted the license (hard [Invalid_argument]
   from [Closure.run_bound]), or the unguarded body actually strayed. *)
let check_licensed (k : Kernel.t) (c : t) =
  List.filter_map
    (fun n ->
      try
        let env = Env.create ~n k in
        let prepared =
          Vexec.Backend.prepare ~license:(license c) Vexec.Backend.Closure k
        in
        let reds = Vexec.Backend.run_in prepared env in
        let got = Vexec.Backend.digest env reds in
        let oracle = Vinterp.Interp.run ~n k in
        let want =
          Vexec.Backend.digest oracle.Vinterp.Interp.env
            oracle.Vinterp.Interp.reductions
        in
        if String.equal got want then None
        else
          Some
            (Printf.sprintf "%s: licensed run diverges from interpreter at n=%d"
               k.Kernel.name n)
      with
      | Invalid_argument msg ->
          Some (Printf.sprintf "%s: n=%d: %s" k.Kernel.name n msg)
      | Env.Out_of_bounds (arr, idx) ->
          Some
            (Printf.sprintf "%s: licensed run trapped at n=%d: %s[%d]"
               k.Kernel.name n arr idx))
    gate_sizes

let gate ?(floor = 0.25) (pairs : (Kernel.t * t) list) =
  let failures =
    Vpar.Pool.parallel_map
      (fun (k, c) -> if c.ct_guard_free then check_licensed k c else [])
      pairs
    |> List.concat
  in
  let accesses =
    List.fold_left (fun n (_, c) -> n + Array.length c.ct_accesses) 0 pairs
  in
  let safe = List.fold_left (fun n (_, c) -> n + c.ct_safe) 0 pairs in
  let unsafe = List.fold_left (fun n (_, c) -> n + c.ct_unsafe) 0 pairs in
  let guard_free =
    List.fold_left (fun n (_, c) -> if c.ct_guard_free then n + 1 else n) 0 pairs
  in
  let bind_time =
    List.fold_left (fun n (k, _) -> n + bind_time_guard_free k) 0 pairs
  in
  let failures =
    if accesses = 0 then failures
    else
      let frac = float_of_int safe /. float_of_int accesses in
      if frac < floor then
        failures
        @ [
            Printf.sprintf
              "certified fraction %.3f below the %.2f floor (%d/%d accesses)"
              frac floor safe accesses;
          ]
      else failures
  in
  let failures =
    if safe > bind_time then failures
    else
      failures
      @ [
          Printf.sprintf
            "static certificates license %d accesses, not strictly more than \
             the bind-time interval check's %d"
            safe bind_time;
        ]
  in
  {
    g_kernels = List.length pairs;
    g_accesses = accesses;
    g_safe = safe;
    g_unsafe = unsafe;
    g_guard_free = guard_free;
    g_bind_time = bind_time;
    g_failures = failures;
  }

let gate_pass (g : gate) = g.g_failures = []
