(** Experiment samples: one per TSVC kernel the transform can vectorize. *)

type transform = Llv | Slp

val transform_to_string : transform -> string

type sample = {
  name : string;
  category : Tsvc.Category.t;
  kernel : Vir.Kernel.t;
  vk : Vvect.Vinstr.vkernel;
  vf : int;
  raw : float array;  (** scalar body instruction-class counts *)
  norm_raw : float array;
      (** counts after the [Vanalysis.Opt] normalization pipeline *)
  rated : float array;  (** block-composition features *)
  extended : float array;  (** rated + derived features (extension) *)
  absint : float array;  (** extended + abstract-interpretation columns *)
  opt : float array;
      (** absint features of the normalized body + ratio/hoist columns *)
  deps : float array;
      (** opt features + nest-wide dependence-graph and idiom columns *)
  cert : float array;
      (** deps features + certified-safe access fraction and guard-free
          license flag ({!Vanalysis.Cert}) *)
  vraw : float array;  (** vector body counts (cost-target fits) *)
  exec_backend : string;  (** execution backend that ran the kernel *)
  exec_digest : string;
      (** fingerprint of the backend execution ({!Vmachine.Measure.execute}) *)
  measured : float;  (** noisy measured speedup: the ground truth *)
  scalar_cycles_iter : float;
  vector_cycles_block : float;
  scalar_total : float;
  vector_total : float;
  baseline : float;  (** baseline model's predicted speedup *)
}

val apply_transform :
  transform -> vf:int -> Vir.Kernel.t -> Vvect.Vinstr.vkernel option

(** Build samples for every entry the transform can vectorize at the
    machine's natural VF.  Entries are built on the shared domain pool
    through {!Vpar.Pool.supervised_map} (task failures, injected worker
    crashes and timeouts quarantine the sample instead of aborting the
    run) and memoized in a process-wide content-keyed cache (kernel
    content, machine, transform, n, noise_amp, seed, repeats, active
    fault plan), so experiments sharing a (machine, transform, config)
    combination pay for vectorization and machine-model measurement once.

    [?repeats] (default 1) measures the speedup k times under derived
    seeds, rejects repeats outside 3.5 normalized MADs of the median, and
    keeps the median of the survivors; [repeats = 1] is the historical
    single-shot behaviour.  Samples with no usable measurement are
    quarantined into the {!health} ledger, never silently dropped.
    [?timeout_s] (default 0.5) cancels a build task whose simulated hang
    exceeds it.

    [?backend] (default {!Vexec.Backend.default}) selects the execution
    engine that actually runs each kernel; the backend id is folded into
    the cache key, so switching backends never serves samples another
    backend built. *)
val build :
  ?noise_amp:float -> ?seed:int -> ?repeats:int ->
  ?backend:Vexec.Backend.t -> ?pool:Vpar.Pool.t -> ?timeout_s:float ->
  machine:Vmachine.Descr.t -> transform:transform -> n:int ->
  Tsvc.Registry.entry list -> sample list

(** When enabled, {!build} hands each kernel's static safety certificate
    ({!Vanalysis.Cert.license}) to the execution backend, so certified
    kernels take the guard-free closure path licensed once per kernel
    instead of re-deriving safety intervals per bind.  Off by default;
    the bench harness toggles it to time static vs bind-time licensing. *)
val set_static_licensing : bool -> unit

(** {2 Health ledger} *)

(** One sample that could not enter a dataset, and why. *)
type quarantine = {
  q_name : string;  (** kernel *)
  q_machine : string;
  q_transform : string;
  q_reason : string;
}

type health = {
  h_quarantined : quarantine list;  (** oldest first, deduplicated *)
  h_cache_corruptions : int;
      (** corrupted cache entries detected and rebuilt *)
  h_repeats_rejected : int;  (** repeat measurements discarded (MAD or
      non-finite) *)
}

(** The process-wide health ledger since the last {!health_reset}. *)
val health : unit -> health

val health_reset : unit -> unit

(** {2 Sample cache introspection} *)

type cache_stats = { hits : int; misses : int; entries : int }

(** Hit/miss counters since the last {!cache_clear}, plus the live entry
    count (one per cached (kernel, machine, transform, config) key,
    including negative entries for non-vectorizable kernels). *)
val cache_stats : unit -> cache_stats

(** Drop every cached sample and reset the counters. *)
val cache_clear : unit -> unit

(** Disable or re-enable memoization (used to time cold baselines).
    Enabled by default; when disabled the counters do not move. *)
val set_cache_enabled : bool -> unit

(** Which execution backend produced the cached samples currently live in
    the cache: [(backend, count)] sorted by backend name.  Entries with no
    execution (non-vectorizable, quarantined) are not counted. *)
val cache_backends : unit -> (string * int) list

val measured_array : sample list -> float array
val baseline_array : sample list -> float array
