(** Experiment samples: one per TSVC kernel the transform can vectorize. *)

type transform = Llv | Slp

val transform_to_string : transform -> string

type sample = {
  name : string;
  category : Tsvc.Category.t;
  kernel : Vir.Kernel.t;
  vk : Vvect.Vinstr.vkernel;
  vf : int;
  raw : float array;  (** scalar body instruction-class counts *)
  norm_raw : float array;
      (** counts after the [Vanalysis.Opt] normalization pipeline *)
  rated : float array;  (** block-composition features *)
  extended : float array;  (** rated + derived features (extension) *)
  absint : float array;  (** extended + abstract-interpretation columns *)
  opt : float array;
      (** absint features of the normalized body + ratio/hoist columns *)
  vraw : float array;  (** vector body counts (cost-target fits) *)
  measured : float;  (** noisy measured speedup: the ground truth *)
  scalar_cycles_iter : float;
  vector_cycles_block : float;
  scalar_total : float;
  vector_total : float;
  baseline : float;  (** baseline model's predicted speedup *)
}

val apply_transform :
  transform -> vf:int -> Vir.Kernel.t -> Vvect.Vinstr.vkernel option

(** Build samples for every entry the transform can vectorize at the
    machine's natural VF.  Entries are built on the shared domain pool and
    memoized in a process-wide content-keyed cache (kernel content,
    machine, transform, n, noise_amp, seed), so experiments sharing a
    (machine, transform, config) combination pay for vectorization and
    machine-model measurement once. *)
val build :
  ?noise_amp:float -> ?seed:int -> machine:Vmachine.Descr.t ->
  transform:transform -> n:int -> Tsvc.Registry.entry list -> sample list

(** {2 Sample cache introspection} *)

type cache_stats = { hits : int; misses : int; entries : int }

(** Hit/miss counters since the last {!cache_clear}, plus the live entry
    count (one per cached (kernel, machine, transform, config) key,
    including negative entries for non-vectorizable kernels). *)
val cache_stats : unit -> cache_stats

(** Drop every cached sample and reset the counters. *)
val cache_clear : unit -> unit

(** Disable or re-enable memoization (used to time cold baselines).
    Enabled by default; when disabled the counters do not move. *)
val set_cache_enabled : bool -> unit

val measured_array : sample list -> float array
val baseline_array : sample list -> float array
