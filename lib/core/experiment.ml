(* Drivers for every table and figure in the paper, plus two ablations.
   Each returns a [Report.result]; the bench harness prints them all. *)

type config = {
  n : int;
  noise_amp : float;
  seed : int;
}

let default_config =
  { n = Tsvc.Registry.default_n; noise_amp = Vmachine.Measure.default_noise;
    seed = 1 }

let samples ?(config = default_config) ~machine ~transform () =
  Dataset.build ~noise_amp:config.noise_amp ~seed:config.seed ~machine
    ~transform ~n:config.n Tsvc.Registry.all

let row_of label predicted samples = { Report.label; eval = Metrics.evaluate ~predicted samples }

let baseline_row samples =
  row_of "baseline (LLVM-style)" (Dataset.baseline_array samples) samples

let fitted_row ~method_ ~features ~target label samples =
  let m = Linmodel.fit ~method_ ~features ~target samples in
  row_of label (Linmodel.predict_all m samples) samples

(* LOOCV predictions are a pure function of (method, features, target,
   samples), and the grid repeats specs: F4, T2 and A4 all validate the
   NNLS/rated/speedup row on the same ARM sample set.  NNLS and SVR pay n
   refits per call, so predictions are memoized on a content key the same
   way [Dataset.build] memoizes samples.  Only the plain float payloads
   feed the key ([Dataset.sample] holds kernels with closures). *)
let loocv_cache : (string, float array) Hashtbl.t = Hashtbl.create 32
let loocv_mutex = Mutex.create ()
let loocv_hits = Atomic.make 0
let loocv_misses = Atomic.make 0

let loocv_key ~method_ ~features ~target samples =
  let b = Buffer.create 8192 in
  Buffer.add_string b (Linmodel.fit_method_to_string method_);
  Buffer.add_string b (Linmodel.feature_kind_to_string features);
  Buffer.add_string b (Linmodel.target_to_string target);
  List.iter
    (fun (s : Dataset.sample) ->
      Buffer.add_string b s.name;
      Buffer.add_string b
        (Marshal.to_string
           ( s.raw, s.norm_raw, s.rated, s.extended, s.absint, s.opt, s.deps,
             s.cert, s.vraw, s.vf, s.measured, s.scalar_cycles_iter,
             s.vector_cycles_block )
           []))
    samples;
  Digest.string (Buffer.contents b)

let loocv_predictions ~method_ ~features ~target samples =
  let key = loocv_key ~method_ ~features ~target samples in
  let cached =
    Mutex.lock loocv_mutex;
    let v = Hashtbl.find_opt loocv_cache key in
    Mutex.unlock loocv_mutex;
    v
  in
  match cached with
  | Some predicted ->
      Atomic.incr loocv_hits;
      predicted
  | None ->
      Atomic.incr loocv_misses;
      let predicted = Crossval.loocv ~method_ ~features ~target samples in
      Mutex.lock loocv_mutex;
      Hashtbl.replace loocv_cache key predicted;
      Mutex.unlock loocv_mutex;
      predicted

let loocv_cache_stats () =
  Mutex.lock loocv_mutex;
  let entries = Hashtbl.length loocv_cache in
  Mutex.unlock loocv_mutex;
  { Dataset.hits = Atomic.get loocv_hits;
    misses = Atomic.get loocv_misses; entries }

let loocv_cache_clear () =
  Mutex.lock loocv_mutex;
  Hashtbl.reset loocv_cache;
  Mutex.unlock loocv_mutex;
  Atomic.set loocv_hits 0;
  Atomic.set loocv_misses 0

let loocv_row ~method_ ~features ~target label samples =
  let predicted = loocv_predictions ~method_ ~features ~target samples in
  row_of label predicted samples

let mk_result ~id ~title ~machine ~transform ~samples rows notes =
  {
    Report.id;
    title;
    machine;
    transform = Dataset.transform_to_string transform;
    n_samples = List.length samples;
    rows;
    notes;
  }

(* --- F1: state of the art on ARM --------------------------------------- *)

let f1 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"F1" ~title:"State of the art: built-in cost model on ARMv8"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s ]
    [ "paper: low correlation between estimated and measured speedup;";
      "       both false positives and false negatives present" ]

(* --- F2: fitted for speedup (ARM) --------------------------------------- *)

let f2 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"F2" ~title:"Fitted for speedup (ARM): L2 and NNLS"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s;
      fitted_row ~method_:Linmodel.L2 ~features:Linmodel.Raw
        ~target:Linmodel.Speedup "L2 (raw counts)" s;
      fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Raw
        ~target:Linmodel.Speedup "NNLS (raw counts)" s ]
    [ "paper: fitting speedup narrows the target interval to (0, VF];";
      "       both fits beat the baseline correlation" ]

(* --- F3: rated instruction count (ARM) ---------------------------------- *)

let f3 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"F3"
    ~title:"Block composition: rated instruction count features (ARM)"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s;
      fitted_row ~method_:Linmodel.L2 ~features:Linmodel.Raw
        ~target:Linmodel.Speedup "L2 (raw counts)" s;
      fitted_row ~method_:Linmodel.L2 ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "L2 (rated)" s;
      fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS (rated)" s ]
    [ "paper: percentages expose arithmetic intensity, helping";
      "       memory-bound kernels" ]

(* --- F4/F5: leave-one-out cross-validation (ARM) ------------------------ *)

let f4 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"F4" ~title:"LOOCV, NNLS fitted for speedup (ARM)"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s;
      fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS (fit on all)" s;
      loocv_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS (LOOCV)" s ]
    [ "paper: out-of-sample predictions remain correlated" ]

let f5 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"F5" ~title:"LOOCV, L2 fitted for speedup (ARM)"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s;
      fitted_row ~method_:Linmodel.L2 ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "L2 (fit on all)" s;
      loocv_row ~method_:Linmodel.L2 ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "L2 (LOOCV)" s ]
    [ "paper: L2 generalizes slightly worse than NNLS (unconstrained";
      "       weights can overfit)" ]

(* --- F6: state of the art on x86 ---------------------------------------- *)

let f6 ?(config = default_config) () =
  let machine = Vmachine.Machines.xeon_avx2 in
  let s = samples ~config ~machine ~transform:Dataset.Slp () in
  mk_result ~id:"F6"
    ~title:"State of the art x86: SLP after unrolling, AVX2"
    ~machine:machine.name ~transform:Dataset.Slp ~samples:s
    [ baseline_row s ]
    [ "paper: same study on a Xeon E5 with AVX2, SLP applied after";
      "       loop unrolling" ]

(* --- F7: fitted for cost (x86) ------------------------------------------ *)

let f7 ?(config = default_config) () =
  let machine = Vmachine.Machines.xeon_avx2 in
  let s = samples ~config ~machine ~transform:Dataset.Slp () in
  mk_result ~id:"F7" ~title:"Fitted for cost (x86): L2, NNLS, SVR"
    ~machine:machine.name ~transform:Dataset.Slp ~samples:s
    [ baseline_row s;
      fitted_row ~method_:Linmodel.L2 ~features:Linmodel.Raw
        ~target:Linmodel.Cost "L2 (cost target)" s;
      fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Raw
        ~target:Linmodel.Cost "NNLS (cost target)" s;
      fitted_row ~method_:Linmodel.Svr ~features:Linmodel.Raw
        ~target:Linmodel.Cost "SVR (cost target)" s ]
    [ "paper: cost targets span a large interval, so the fit is";
      "       harder than fitting speedup directly" ]

(* --- F8: fitted for speedup (x86) ---------------------------------------- *)

let f8 ?(config = default_config) () =
  let machine = Vmachine.Machines.xeon_avx2 in
  let s = samples ~config ~machine ~transform:Dataset.Slp () in
  mk_result ~id:"F8" ~title:"Fitted for speedup (x86): L2, NNLS, SVR"
    ~machine:machine.name ~transform:Dataset.Slp ~samples:s
    [ baseline_row s;
      fitted_row ~method_:Linmodel.L2 ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "L2 (speedup target)" s;
      fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS (speedup target)" s;
      fitted_row ~method_:Linmodel.Svr ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "SVR (speedup target)" s ]
    [ "paper: all three improve correlation; false negatives reduced (L2)";
      "       or eliminated (NNLS, SVR) at the price of a few more FPs" ]

(* --- F9: abstract-interpretation features (alignment, trip counts) -------- *)

(* The absint columns carry facts a pure instruction count cannot express:
   the fraction of memory accesses provably lane-aligned at the machine's
   VF, and whether the trip count is provably size-independent.  The row
   pair prints the fit with and without them; the note reports the
   correlation delta. *)
let f9 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  let without =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Extended
      ~target:Linmodel.Speedup "NNLS extended (no absint)" s
  in
  let with_ =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Absint
      ~target:Linmodel.Speedup "NNLS absint (aligned-frac, const-trip)" s
  in
  let delta =
    with_.Report.eval.Metrics.pearson -. without.Report.eval.Metrics.pearson
  in
  mk_result ~id:"F9"
    ~title:"Absint features: aligned-access fraction + provable trip count"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s; without; with_ ]
    [ Printf.sprintf
        "ours: correlation delta from the absint columns: %+.4f" delta;
      "      (alignment and trip-count facts come from the abstract";
      "      interpretation; the superset fit must not regress)" ]

(* --- F10: normalized instruction counts ----------------------------------- *)

(* The Opt pipeline's claim, quantified: source-level raw counts price
   redundancy (duplicate loads, foldable arithmetic, hoistable invariants)
   that costs no cycles after the compiler normalizes, so the same fit on
   post-pipeline counts should correlate at least as well.  The row pair
   shares measurements and differs only in which counts feed the fit; the
   note reports the correlation delta.  A third fitted row exercises the
   full [opt] feature kind (normalized absint columns + norm-ratio +
   hoisted-fraction). *)
let f10 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  let raw_row =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Raw
      ~target:Linmodel.Speedup "NNLS raw (source counts)" s
  in
  let norm_samples =
    List.map
      (fun (x : Dataset.sample) ->
        { x with Dataset.raw = x.norm_raw; rated = Feature.rate x.norm_raw })
      s
  in
  let norm_row =
    let m =
      Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Raw
        ~target:Linmodel.Speedup norm_samples
    in
    row_of "NNLS raw (normalized counts)"
      (Linmodel.predict_all m norm_samples) s
  in
  let opt_row =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Opt
      ~target:Linmodel.Speedup "NNLS opt (norm absint + ratio, hoist)" s
  in
  let delta =
    norm_row.Report.eval.Metrics.pearson -. raw_row.Report.eval.Metrics.pearson
  in
  mk_result ~id:"F10"
    ~title:"Normalized counts: fitting after the SSA optimization pipeline"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s; raw_row; norm_row; opt_row ]
    [ Printf.sprintf
        "ours: correlation delta, normalized vs raw counts: %+.4f" delta;
      "      (counts taken after GVN/DCE/DSE/folding/LICM; redundancy the";
      "      source body carries but the machine never executes)" ]

(* --- F11: contamination robustness --------------------------------------- *)

(* Corrupt a fraction of the measured speedups with heavy-tailed two-sided
   spikes (the same corruption [Vfault] injects at the Measure site, here
   applied through a standalone plan so the sweep is independent of the
   process-wide active plan), fit L2 and Huber on the contaminated
   dataset, and score both against the *clean* measurements.  The paper's
   fits assume well-behaved medians; this quantifies how quickly plain
   least squares degrades when that assumption breaks, and how much of
   the loss Huber-IRLS recovers. *)

let f11_rates = [ 0.0; 0.05; 0.10; 0.15; 0.20 ]
let f11_spike = 16.0

let f11_contaminate ~seed ~rate samples =
  let plan =
    { Vfault.Plan.seed;
      clauses =
        [ { Vfault.Plan.site = Vfault.Plan.Measure; kind = Vfault.Plan.Spike;
            rate; magnitude = f11_spike } ] }
  in
  List.map
    (fun (s : Dataset.sample) ->
      match
        Vfault.Plan.draw plan ~site:Vfault.Plan.Measure ~kind:Vfault.Plan.Spike
          ~key:s.name
      with
      | None -> s
      | Some mag ->
          let side =
            Vfault.Plan.u01 ~seed ~site:Vfault.Plan.Measure
              ~kind:Vfault.Plan.Spike ~key:(s.name ^ "#side")
          in
          let m = if side < 0.5 then s.measured *. mag else s.measured /. mag in
          { s with Dataset.measured = m })
    samples

let f11 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let clean = samples ~config ~machine ~transform:Dataset.Llv () in
  let fit_on method_ contaminated =
    let m =
      Linmodel.fit ~method_ ~features:Linmodel.Rated ~target:Linmodel.Speedup
        contaminated
    in
    (* Same features, clean ground truth: the eval isolates what the
       contamination did to the learned weights. *)
    Metrics.evaluate ~predicted:(Linmodel.predict_all m clean) clean
  in
  let per_rate =
    List.map
      (fun rate ->
        let contaminated = f11_contaminate ~seed:(config.seed + 41) ~rate clean in
        (rate, fit_on Linmodel.L2 contaminated, fit_on Linmodel.Huber contaminated))
      f11_rates
  in
  let rows =
    List.concat_map
      (fun (rate, l2, huber) ->
        [ { Report.label = Printf.sprintf "L2 @ %2.0f%% outliers" (100. *. rate);
            eval = l2 };
          { Report.label = Printf.sprintf "Huber @ %2.0f%% outliers" (100. *. rate);
            eval = huber } ])
      per_rate
  in
  let notes =
    Printf.sprintf
      "ours: measured speedups contaminated with two-sided %gx spikes;"
      f11_spike
    :: "      both fits scored against the clean measurements"
    :: List.map
         (fun (rate, (l2 : Metrics.eval), (huber : Metrics.eval)) ->
           let fps (e : Metrics.eval) =
             e.confusion.Vstats.Confusion.fp + e.confusion.Vstats.Confusion.fn
           in
           Printf.sprintf
             "      %2.0f%%: pearson L2 %+.4f vs Huber %+.4f (delta %+.4f), \
              false predictions %d vs %d"
             (100. *. rate) l2.pearson huber.pearson
             (huber.pearson -. l2.pearson) (fps l2) (fps huber))
         per_rate
  in
  mk_result ~id:"F11"
    ~title:"Contamination: L2 vs Huber-IRLS under injected outliers"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:clean rows notes

(* --- F12: dependence-graph features --------------------------------------- *)

(* The deps columns carry what the nest-wide dependence engine knows and no
   instruction count can express: the tightest loop-carried distance (the
   serialization pressure a legal-but-narrow width pays), carried-edge
   counts split outer/innermost, and the recognized idiom flags.  The row
   pair prints the fit with and without them; the note reports the
   correlation delta and the oracle's registry-wide precision/recall
   against the translation validator. *)
let f12 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  let without =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Opt
      ~target:Linmodel.Speedup "NNLS opt (no deps)" s
  in
  let with_ =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Deps
      ~target:Linmodel.Speedup "NNLS deps (carried-dep, idiom columns)" s
  in
  let delta =
    with_.Report.eval.Metrics.pearson -. without.Report.eval.Metrics.pearson
  in
  let configs =
    Vanalysis.Depsreport.crosscheck
      (List.map (fun (e : Tsvc.Registry.entry) -> e.kernel) Tsvc.Registry.all)
  in
  let st = Vanalysis.Depsreport.stats configs in
  mk_result ~id:"F12"
    ~title:"Dependence features: carried distances, depths and idiom tags"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s; without; with_ ]
    [ Printf.sprintf
        "ours: correlation delta from the deps columns: %+.4f" delta;
      Printf.sprintf
        "      legality oracle vs validator: precision %.4f, recall %.4f \
         over %d configs (%d inapplicable)"
        (Vanalysis.Depsreport.precision st)
        (Vanalysis.Depsreport.recall st)
        (List.length configs) st.Vanalysis.Depsreport.st_inapplicable;
      "      (the oracle must be sound: precision < 1 fails the CI gate)" ]

(* --- F13: static safety-certificate features ------------------------------ *)

(* The cert columns expose what the relational bounds prover certifies about
   each kernel: the fraction of memory accesses proved in-bounds
   parametrically in n and the runtime parameters, and whether the whole
   kernel earned a guard-free license.  A guard-free kernel pays no bounds
   checks in the main loop; the column pair lets the fit price that in.  The
   note reports the correlation delta plus the registry-wide certification
   census (static vs bind-time licensed access counts). *)
let f13 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  let without =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Deps
      ~target:Linmodel.Speedup "NNLS deps (no certificates)" s
  in
  let with_ =
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Cert
      ~target:Linmodel.Speedup "NNLS cert (certified-safe, guard-free columns)"
      s
  in
  let delta =
    with_.Report.eval.Metrics.pearson -. without.Report.eval.Metrics.pearson
  in
  let certs =
    List.map
      (fun (smp : Dataset.sample) ->
        (smp.kernel, Vanalysis.Cert.certify ~vf:smp.vf smp.kernel))
      s
  in
  let total = List.fold_left (fun a (_, c) -> a + Array.length c.Vanalysis.Cert.ct_accesses) 0 certs in
  let safe = List.fold_left (fun a (_, c) -> a + c.Vanalysis.Cert.ct_safe) 0 certs in
  let guard_free =
    List.fold_left
      (fun a (_, c) -> if c.Vanalysis.Cert.ct_guard_free then a + 1 else a)
      0 certs
  in
  let bind_time =
    List.fold_left
      (fun a (k, _) -> a + Vanalysis.Cert.bind_time_guard_free k)
      0 certs
  in
  mk_result ~id:"F13"
    ~title:"Safety certificates: relational bounds proofs license guard-free runs"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s; without; with_ ]
    [ Printf.sprintf
        "ours: correlation delta from the cert columns: %+.4f" delta;
      Printf.sprintf
        "      certified %d/%d accesses, %d/%d kernels guard-free \
         (bind-time baseline %d accesses)"
        safe total guard_free (List.length certs) bind_time ]

(* --- T1: LLV vs SLP on one kernel ---------------------------------------- *)

type t1_row = {
  t1_transform : string;
  t1_baseline : float;
  t1_refined : float;
  t1_measured : float;
}

type t1_result = { t1_kernel : string; t1_rows : t1_row list }

let t1 ?(config = default_config) () =
  let machine = Vmachine.Machines.xeon_avx2 in
  let sl = samples ~config ~machine ~transform:Dataset.Llv () in
  let ss = samples ~config ~machine ~transform:Dataset.Slp () in
  let ml =
    Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
      ~target:Linmodel.Speedup sl
  in
  let ms =
    Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
      ~target:Linmodel.Speedup ss
  in
  (* The kernel where the two transforms disagree the most: the paper's
     point is that aligned models make transforms comparable. *)
  let common =
    List.filter_map
      (fun (a : Dataset.sample) ->
        match List.find_opt (fun (b : Dataset.sample) -> b.name = a.name) ss with
        | Some b -> Some (a, b)
        | None -> None)
      sl
  in
  let best =
    List.fold_left
      (fun acc (a, b) ->
        let gap = abs_float (a.Dataset.measured -. b.Dataset.measured) in
        match acc with
        | Some (_, _, g) when g >= gap -> acc
        | _ -> Some (a, b, gap))
      None common
  in
  match best with
  | None -> { t1_kernel = "(none)"; t1_rows = [] }
  | Some (a, b, _) ->
      {
        t1_kernel = a.name;
        t1_rows =
          [ { t1_transform = "LLV";
              t1_baseline = a.baseline;
              t1_refined = Linmodel.predict ml a;
              t1_measured = a.measured };
            { t1_transform = "SLP";
              t1_baseline = b.baseline;
              t1_refined = Linmodel.predict ms b;
              t1_measured = b.measured } ];
      }

(* --- T2: summary (ARM) ---------------------------------------------------- *)

let t2 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"T2"
    ~title:"Conclusion summary: baseline vs refined model (ARM)"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ baseline_row s;
      loocv_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "refined (NNLS rated, LOOCV)" s ]
    [ "paper: refined model increases correlation, decreases false";
      "       predictions and lowers execution time" ]

(* --- A1: feature-set ablation --------------------------------------------- *)

(* Collapse the memory-access split: every load class becomes load_unit,
   every store class store_unit.  Tests whether the access-pattern features
   carry the signal. *)
let collapse_access (s : Dataset.sample) =
  let collapse f =
    let f = Array.copy f in
    let move src dst =
      let si = Feature.index src and di = Feature.index dst in
      f.(di) <- f.(di) +. f.(si);
      f.(si) <- 0.0
    in
    move Feature.F_load_inv Feature.F_load_unit;
    move Feature.F_load_strided Feature.F_load_unit;
    move Feature.F_load_gather Feature.F_load_unit;
    move Feature.F_store_strided Feature.F_store_unit;
    move Feature.F_store_scatter Feature.F_store_unit;
    f
  in
  { s with Dataset.raw = collapse s.Dataset.raw; rated = collapse s.Dataset.rated }

let a1 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  let s_collapsed = List.map collapse_access s in
  let collapsed_row =
    let m =
      Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup s_collapsed
    in
    row_of "NNLS rated, no access split" (Linmodel.predict_all m s_collapsed) s
  in
  mk_result ~id:"A1"
    ~title:"Ablation: which features carry the signal (ARM)"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Raw
        ~target:Linmodel.Speedup "NNLS raw counts" s;
      fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS rated" s;
      collapsed_row ]
    [ "ours: dropping the access-pattern split degrades the fit, confirming";
      "      the paper's motivation for adding code features" ]

(* --- A2: vector-width sensitivity ----------------------------------------- *)

let a2 ?(config = default_config) () =
  let m128 = Vmachine.Machines.neon_a57 in
  let m256 = Vmachine.Machines.sve_256 in
  let s128 = samples ~config ~machine:m128 ~transform:Dataset.Llv () in
  let s256 = samples ~config ~machine:m256 ~transform:Dataset.Llv () in
  let row m label s =
    ignore m;
    fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
      ~target:Linmodel.Speedup label s
  in
  ( mk_result ~id:"A2a" ~title:"Width ablation: NEON-128" ~machine:m128.name
      ~transform:Dataset.Llv ~samples:s128
      [ baseline_row s128; row m128 "NNLS rated (128-bit)" s128 ]
      [],
    mk_result ~id:"A2b" ~title:"Width ablation: SVE-256-like" ~machine:m256.name
      ~transform:Dataset.Llv ~samples:s256
      [ baseline_row s256; row m256 "NNLS rated (256-bit)" s256 ]
      [ "ours: wider vectors raise the speedup ceiling; the fitted model";
        "      tracks the new interval without retuning the baseline" ] )

(* --- A3: big.LITTLE --------------------------------------------------------- *)

let a3 ?(config = default_config) () =
  let big = Vmachine.Machines.neon_a57 in
  let little = Vmachine.Machines.cortex_a53 in
  let sb = samples ~config ~machine:big ~transform:Dataset.Llv () in
  let sl = samples ~config ~machine:little ~transform:Dataset.Llv () in
  let geo s =
    Vstats.Descriptive.geomean (Dataset.measured_array s)
  in
  ( mk_result ~id:"A3a" ~title:"big.LITTLE ablation: out-of-order A57-like"
      ~machine:big.name ~transform:Dataset.Llv ~samples:sb
      [ baseline_row sb;
        fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
          ~target:Linmodel.Speedup "NNLS rated" sb ]
      [ Printf.sprintf "geomean measured speedup: %.2f" (geo sb) ],
    mk_result ~id:"A3b" ~title:"big.LITTLE ablation: in-order A53-like"
      ~machine:little.name ~transform:Dataset.Llv ~samples:sl
      [ baseline_row sl;
        fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
          ~target:Linmodel.Speedup "NNLS rated" sl ]
      [ Printf.sprintf "geomean measured speedup: %.2f" (geo sl);
        "ours: the in-order core exposes latency chains the baseline cannot";
        "      see, but the fitted model absorbs them into its weights" ] )

(* --- A4: extended features ("add more code features") ------------------------ *)

let a4 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let s = samples ~config ~machine ~transform:Dataset.Llv () in
  mk_result ~id:"A4"
    ~title:"Extension: more code features (intensity, size, recurrence)"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:s
    [ loocv_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS rated (LOOCV)" s;
      loocv_row ~method_:Linmodel.Nnls ~features:Linmodel.Extended
        ~target:Linmodel.Speedup "NNLS extended (LOOCV)" s;
      loocv_row ~method_:Linmodel.L2 ~features:Linmodel.Extended
        ~target:Linmodel.Speedup "L2 extended (LOOCV)" s ]
    [ "ours: implements the paper's 'add more code features' next step;";
      "      derived features must help out-of-sample, not just in-sample" ]

(* --- A5: typed variants ("cover all instruction types") ----------------------- *)

let a5 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let base = samples ~config ~machine ~transform:Dataset.Llv () in
  let typed =
    Dataset.build ~noise_amp:config.noise_amp ~seed:config.seed ~machine
      ~transform:Dataset.Llv ~n:config.n Tsvc.Registry.typed_extension
  in
  let model_base =
    Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
      ~target:Linmodel.Speedup base
  in
  let model_aug =
    Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
      ~target:Linmodel.Speedup (base @ typed)
  in
  {
    Report.id = "A5";
    title = "Extension: f64/i32 typed variants (instruction-type coverage)";
    machine = machine.name;
    transform = Dataset.transform_to_string Dataset.Llv;
    n_samples = List.length typed;
    rows =
      [ { Report.label = "f32-trained, typed test set";
          eval = Metrics.evaluate ~predicted:(Linmodel.predict_all model_base typed) typed };
        { Report.label = "typed-trained, typed test set";
          eval = Metrics.evaluate ~predicted:(Linmodel.predict_all model_aug typed) typed };
        { Report.label = "baseline, typed test set";
          eval = Metrics.evaluate ~predicted:(Dataset.baseline_array typed) typed } ];
    notes =
      [ "ours: a model fitted only on f32 loops degrades on f64/i32 variants";
        "      (different VF and latencies); adding typed training loops";
        "      restores the fit - the paper's 'cover all instruction types'" ];
  }

(* --- A6: trace-driven validation of the analytic memory model --------------- *)

type a6_row = {
  a6_name : string;
  a6_analytic : string;
  a6_simulated : string;
  a6_bytes_per_elem : float;
  a6_agrees : bool;
}

type a6_result = {
  a6_machine : string;
  a6_total : int;
  a6_agreeing : int;
  a6_rows : a6_row list;  (* the disagreeing kernels plus a few exemplars *)
}

let a6 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let mem = machine.Vmachine.Descr.mem in
  let exemplars = [ "s000"; "vag"; "s2101"; "vdotr"; "s127" ] in
  (* The trace simulation is by far the most expensive per-kernel step in
     the suite and touches no shared state, so fan it out on the pool;
     [parallel_map] keeps registry order, so the fold below is
     deterministic. *)
  let per_kernel =
    Vpar.Pool.parallel_map
      (fun (e : Tsvc.Registry.entry) ->
        let k = e.kernel in
        let s = Vmachine.Tracesim.simulate mem ~n:config.n k in
        let analytic =
          Vmachine.Memmodel.level_of mem
            ~footprint_bytes:(Vir.Kernel.footprint_bytes ~n:config.n k)
        in
        let simulated = Vmachine.Tracesim.dominant_level s in
        let ok = Vmachine.Tracesim.agrees ~analytic ~simulated in
        let row =
          if (not ok) || List.mem k.Vir.Kernel.name exemplars then
            Some
              {
                a6_name = k.Vir.Kernel.name;
                a6_analytic = Vmachine.Memmodel.level_to_string analytic;
                a6_simulated = Vmachine.Memmodel.level_to_string simulated;
                a6_bytes_per_elem = s.Vmachine.Tracesim.bytes_moved_per_elem;
                a6_agrees = ok;
              }
          else None
        in
        (ok, row))
      Tsvc.Registry.all
  in
  {
    a6_machine = machine.Vmachine.Descr.name;
    a6_total = List.length per_kernel;
    a6_agreeing =
      List.fold_left (fun n (ok, _) -> if ok then n + 1 else n) 0 per_kernel;
    a6_rows = List.filter_map snd per_kernel;
  }

(* --- A7: transformation selection with aligned models ------------------------ *)

type a7_result = { a7_machine : string; a7_rows : Select.summary list }

let a7 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  (* Train the cost model on both transforms so it prices any candidate. *)
  let train =
    samples ~config ~machine ~transform:Dataset.Llv ()
    @ samples ~config ~machine ~transform:Dataset.Slp ()
  in
  let cost_model =
    Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Raw
      ~target:Linmodel.Cost train
  in
  let eval policy =
    Select.evaluate ~noise_amp:config.noise_amp ~seed:config.seed machine
      ~n:config.n policy Tsvc.Registry.all
  in
  {
    a7_machine = machine.Vmachine.Descr.name;
    a7_rows =
      [ eval Select.Always_scalar;
        eval Select.Default_vectorize;
        eval Select.By_baseline;
        eval (Select.By_cost_model cost_model);
        eval Select.Oracle ];
  }

(* --- A8: generalization to application kernels ------------------------------- *)

let a8 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let tsvc = samples ~config ~machine ~transform:Dataset.Llv () in
  let apps =
    Dataset.build ~noise_amp:config.noise_amp ~seed:config.seed ~machine
      ~transform:Dataset.Llv ~n:config.n Vapps.Registry.as_tsvc_entries
  in
  let m =
    Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
      ~target:Linmodel.Speedup tsvc
  in
  {
    Report.id = "A8";
    title = "Generalization: TSVC-trained model on application kernels";
    machine = machine.name;
    transform = Dataset.transform_to_string Dataset.Llv;
    n_samples = List.length apps;
    rows =
      [ { Report.label = "baseline, app kernels";
          eval = Metrics.evaluate ~predicted:(Dataset.baseline_array apps) apps };
        { Report.label = "TSVC-trained NNLS, app kernels";
          eval = Metrics.evaluate ~predicted:(Linmodel.predict_all m apps) apps } ];
    notes =
      [ "ours: the fitted model transfers from the 151 TSVC patterns to";
        "      stencils, BLAS-1/2 pieces and imaging loops it never saw" ];
  }

(* --- A9: interleaving ablation ------------------------------------------------ *)

type a9_row = {
  a9_ic : int;
  a9_geo_all : float;  (* geomean measured speedup over vectorizable kernels *)
  a9_geo_red : float;  (* over reduction kernels only *)
  a9_kernels : int;
}

type a9_result = { a9_machine : string; a9_rows : a9_row list }

let a9 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let row ic =
    let speedups =
      List.filter_map
        (fun (e : Tsvc.Registry.entry) ->
          let vf = Vmachine.Descr.vf_for_kernel machine e.kernel in
          if vf < 2 then None
          else
            match Vvect.Llv.vectorize ~vf ~ic e.kernel with
            | Error _ -> None
            | Ok vk ->
                let m =
                  Vmachine.Measure.measure ~noise_amp:config.noise_amp
                    ~seed:config.seed machine ~n:config.n vk
                in
                Some (e.category, m.Vmachine.Measure.speedup))
        Tsvc.Registry.all
    in
    let geo l = Vstats.Descriptive.geomean (Array.of_list l) in
    let all = List.map snd speedups in
    let reds =
      List.filter_map
        (fun (c, s) -> if c = Tsvc.Category.Reductions then Some s else None)
        speedups
    in
    {
      a9_ic = ic;
      a9_geo_all = geo all;
      a9_geo_red = geo reds;
      a9_kernels = List.length all;
    }
  in
  { a9_machine = machine.Vmachine.Descr.name; a9_rows = List.map row [ 1; 2; 4 ] }

(* --- A10: feature sensitivity to IR cleanup ---------------------------------- *)

(* Measured speedups come from the *cleaned* kernels (a compiler simplifies
   before vectorizing); the question is whether feature extraction must see
   the cleaned IR too, or whether source-level counts suffice. *)
let a10 ?(config = default_config) () =
  let machine = Vmachine.Machines.neon_a57 in
  let cleaned_entries =
    List.map
      (fun (e : Tsvc.Registry.entry) ->
        { e with Tsvc.Registry.kernel = Vanalysis.Opt.normalize e.kernel })
      Tsvc.Registry.all
  in
  let clean =
    Dataset.build ~noise_amp:config.noise_amp ~seed:config.seed ~machine
      ~transform:Dataset.Llv ~n:config.n cleaned_entries
  in
  (* Mismatched variant: same measurements, features from the unsimplified
     source-level kernels. *)
  let source_features =
    List.map
      (fun (s : Dataset.sample) ->
        let orig = (Tsvc.Registry.find_exn s.name).kernel in
        { s with
          Dataset.raw = Feature.counts orig;
          rated = Feature.rated orig;
          extended = Feature.extended orig })
      clean
  in
  mk_result ~id:"A10"
    ~title:"Ablation: feature extraction before vs after IR cleanup"
    ~machine:machine.name ~transform:Dataset.Llv ~samples:clean
    [ fitted_row ~method_:Linmodel.Nnls ~features:Linmodel.Rated
        ~target:Linmodel.Speedup "NNLS rated, cleaned IR" clean;
      { Report.label = "NNLS rated, source-level IR";
        eval =
          (let m =
             Linmodel.fit ~method_:Linmodel.Nnls ~features:Linmodel.Rated
               ~target:Linmodel.Speedup source_features
           in
           Metrics.evaluate ~predicted:(Linmodel.predict_all m source_features)
             clean) } ]
    [ "ours: CSE/DCE/folding shrink 40 of the 151 bodies (1151 -> 1056";
      "      instructions); the rated features prove robust to the cleanup";
      "      (rating normalizes away redundancy), a useful property when the";
      "      model must run before the compiler's own simplification" ]
