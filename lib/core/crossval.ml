(* Leave-one-out cross-validation: each kernel is predicted by a model
   fitted on the other kernels, the paper's test for whether the fitted
   weights generalize rather than memorize.

   For L2 speedup fits the held-out predictions are analytic: with
   residual e_i and leverage h_i from a single QR factorization of the
   full design matrix, the leave-one-out prediction is
   y_i - e_i / (1 - h_i) — O(n·p²) total instead of n refits.  (The same
   identity holds for the ridge fallback with h computed from
   (XᵀX + λI)⁻¹.)  NNLS and SVR have no such identity, so they refit n
   times, fanned out over the shared domain pool; the sample set itself
   comes from Dataset's memo cache, so refits share one build. *)

let naive_one ~method_ ~features ~target samples (arr : Dataset.sample array) i =
  let training = List.filteri (fun j _ -> j <> i) samples in
  let m = Linmodel.fit ~method_ ~features ~target training in
  Linmodel.predict m arr.(i)

let loocv_naive ~method_ ~features ~target samples arr =
  Vpar.Pool.parallel_mapi_array
    (fun i _ -> naive_one ~method_ ~features ~target samples arr i)
    arr

(* Mirrors Linmodel's L2 path: plain least squares, ridge on rank
   deficiency.  A leverage within 1e-10 of 1 means the left-out fit is
   determined by that very row and the identity divides by ~0; such rows
   (and any residual singularity) fall back to a naive refit. *)
let loocv_l2_speedup ~features samples (arr : Dataset.sample array) =
  let rows = List.map (Linmodel.features_of features) samples in
  let ys = Dataset.measured_array samples in
  let x = Vlinalg.Mat.of_rows rows in
  let lambda, weights =
    try (0.0, Vlinalg.Qr.lstsq x ys)
    with Vlinalg.Qr.Singular _ -> (1e-6, Vlinalg.Qr.lstsq_ridge ~lambda:1e-6 x ys)
  in
  let h = Vlinalg.Qr.leverages ~lambda x in
  let fitted = Vlinalg.Mat.mat_vec x weights in
  Array.mapi
    (fun i _ ->
      let d = 1.0 -. h.(i) in
      if d < 1e-10 then
        naive_one ~method_:Linmodel.L2 ~features ~target:Linmodel.Speedup
          samples arr i
      else ys.(i) -. ((ys.(i) -. fitted.(i)) /. d))
    arr

let loocv ~method_ ~features ~target (samples : Dataset.sample list) =
  let arr = Array.of_list samples in
  match (method_, target) with
  | Linmodel.L2, Linmodel.Speedup when Array.length arr > 1 -> (
      try loocv_l2_speedup ~features samples arr
      with Vlinalg.Qr.Singular _ ->
        loocv_naive ~method_ ~features ~target samples arr)
  | _ -> loocv_naive ~method_ ~features ~target samples arr

(* k-fold variant (an extension beyond the paper, used by the ablations):
   deterministic contiguous folds over the registry order, one fit per
   fold (not per sample), fitted in parallel. *)
let kfold ~k ~method_ ~features ~target (samples : Dataset.sample list) =
  let n = List.length samples in
  if k < 2 then invalid_arg "Crossval.kfold: k must be >= 2";
  if k > n then
    invalid_arg
      (Printf.sprintf "Crossval.kfold: k = %d exceeds the %d samples" k n);
  let arr = Array.of_list samples in
  let fold_of i = i * k / n in
  let models =
    Array.of_list
      (Vpar.Pool.parallel_map
         (fun fi ->
           let training = List.filteri (fun j _ -> fold_of j <> fi) samples in
           Linmodel.fit ~method_ ~features ~target training)
         (List.init k Fun.id))
  in
  Array.mapi (fun i s -> Linmodel.predict models.(fold_of i) s) arr
