(** Cross-validation of fitted models. *)

(** Leave-one-out: each sample predicted by a model fitted on the rest.
    L2 speedup fits use the analytic hat-matrix identity
    [y_i - e_i / (1 - h_i)] from a single QR factorization (O(n·p²));
    NNLS and SVR refit [n] times on the shared domain pool.  Both paths
    agree to within 1e-9 (checked by the test suite). *)
val loocv :
  method_:Linmodel.fit_method -> features:Linmodel.feature_kind ->
  target:Linmodel.target -> Dataset.sample list -> float array

(** Deterministic contiguous k-fold variant: one fit per fold, fitted in
    parallel.  @raise Invalid_argument when [k < 2] or [k] exceeds the
    number of samples. *)
val kfold :
  k:int -> method_:Linmodel.fit_method -> features:Linmodel.feature_kind ->
  target:Linmodel.target -> Dataset.sample list -> float array
