(* The paper's refined cost models: linear in instruction-class features,
   fitted against measurements.

   Speedup-targeted models predict the speedup directly (target interval
   (0, VF], which is what makes the fit well-conditioned); cost-targeted
   models price scalar and vector blocks with one shared weight vector and
   derive the speedup as a cost ratio. *)

type fit_method = L2 | Nnls | Svr | Huber

let fit_method_to_string = function
  | L2 -> "L2"
  | Nnls -> "NNLS"
  | Svr -> "SVR"
  | Huber -> "Huber"

type feature_kind = Raw | Rated | Extended | Absint | Opt | Deps | Cert

let feature_kind_to_string = function
  | Raw -> "raw"
  | Rated -> "rated"
  | Extended -> "extended"
  | Absint -> "absint"
  | Opt -> "opt"
  | Deps -> "deps"
  | Cert -> "cert"

type target = Speedup | Cost

let target_to_string = function Speedup -> "speedup" | Cost -> "cost"

let names_of_kind = function
  | Cert -> Feature.cert_names
  | Deps -> Feature.deps_names
  | Opt -> Feature.opt_names
  | Absint -> Feature.absint_names
  | Extended -> Feature.extended_names
  | Raw | Rated -> Feature.names

let dim_of kind = List.length (names_of_kind kind)

type t = {
  weights : float array;
  method_ : fit_method;
  features : feature_kind;
  target : target;
}

let features_of kind (s : Dataset.sample) =
  match kind with
  | Raw -> s.raw
  | Rated -> s.rated
  | Extended -> s.extended
  | Absint -> s.absint
  | Opt -> s.opt
  | Deps -> s.deps
  | Cert -> s.cert

let dot w f =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. w.(i))) f;
  !acc

let l2_solve x ys =
  try Vlinalg.Qr.lstsq x ys
  with Vlinalg.Qr.Singular _ -> Vlinalg.Qr.lstsq_ridge ~lambda:1e-6 x ys

(* Huber-IRLS: iteratively reweighted least squares under the Huber loss
   (tuning constant k = 1.345 for 95% efficiency at the Gaussian).  The
   residual scale is re-estimated each iteration as 1.4826 * MAD; rows
   whose residual exceeds k*s get weight k*s/|r| (down-weighting outliers
   linearly), applied by scaling row and target by sqrt(weight) so each
   iteration is a plain weighted least-squares solve.  On data an L2 fit
   explains exactly (scale ~ 0) the L2 solution is returned unchanged, so
   Huber = L2 at zero contamination. *)
let huber_k = 1.345

let huber_solve rows ys =
  let rows_arr = Array.of_list rows in
  let n = Array.length ys in
  let yscale =
    Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1.0 ys
  in
  let w0 = l2_solve (Vlinalg.Mat.of_rows rows) ys in
  let rec iterate w iter =
    if iter >= 50 then w
    else begin
      let absr =
        Array.init n (fun i -> Float.abs (ys.(i) -. dot w rows_arr.(i)))
      in
      let s = 1.4826 *. Vstats.Descriptive.median absr in
      if s <= 1e-12 *. yscale then w
      else begin
        let sw =
          Array.init n (fun i ->
              let r = absr.(i) in
              if r <= huber_k *. s then 1.0 else sqrt (huber_k *. s /. r))
        in
        let xr =
          Array.to_list
            (Array.mapi
               (fun i row -> Array.map (fun v -> sw.(i) *. v) row)
               rows_arr)
        in
        let yr = Array.init n (fun i -> sw.(i) *. ys.(i)) in
        let w' = l2_solve (Vlinalg.Mat.of_rows xr) yr in
        let wscale =
          Array.fold_left (fun m v -> Float.max m (Float.abs v)) 1.0 w
        in
        let delta =
          Array.fold_left Float.max 0.0
            (Array.mapi (fun i v -> Float.abs (v -. w.(i))) w')
        in
        if delta <= 1e-10 *. wscale then w' else iterate w' (iter + 1)
      end
    end
  in
  iterate w0 0

let solve method_ rows ys =
  let x = Vlinalg.Mat.of_rows rows in
  match method_ with
  | L2 -> l2_solve x ys
  | Huber -> huber_solve rows ys
  | Nnls -> Vlinalg.Nnls.solve x ys
  | Svr ->
      (* Normalize the epsilon tube to the target scale. *)
      let scale =
        Array.fold_left (fun m v -> Float.max m (abs_float v)) 1.0 ys
      in
      let params =
        { Vlinalg.Svr.default_params with epsilon = 0.02 *. scale; c = 100.0 }
      in
      Vlinalg.Svr.fit ~params x ys

let fit ~method_ ~features ~target (samples : Dataset.sample list) =
  let weights =
    match target with
    | Speedup ->
        let rows = List.map (features_of features) samples in
        let ys = Dataset.measured_array samples in
        solve method_ rows ys
    | Cost ->
        (* Two rows per kernel: the scalar block priced per vf iterations and
           the vector block priced per block, sharing one weight vector.
           Cost fits always use raw counts: a block's cost scales with its
           size, which rating would erase. *)
        let rows =
          List.concat_map
            (fun (s : Dataset.sample) ->
              [ Array.map (fun v -> v *. float_of_int s.vf) s.raw; s.vraw ])
            samples
        in
        let ys =
          Array.of_list
            (List.concat_map
               (fun (s : Dataset.sample) ->
                 [ s.scalar_cycles_iter *. float_of_int s.vf;
                   s.vector_cycles_block ])
               samples)
        in
        solve method_ rows ys
  in
  { weights; method_; features; target }

(* Predicted speedup of one sample under the model. *)
let predict (m : t) (s : Dataset.sample) =
  match m.target with
  | Speedup -> dot m.weights (features_of m.features s)
  | Cost ->
      let scalar =
        dot m.weights (Array.map (fun v -> v *. float_of_int s.vf) s.raw)
      in
      let vector = dot m.weights s.vraw in
      (* An L2 fit can price a block at a non-positive cost; clamp as a
         real compiler would. *)
      if vector <= 1e-6 then float_of_int s.vf
      else Float.max 0.0 (scalar /. vector)

let predict_all m samples = Array.of_list (List.map (predict m) samples)

(* --- compatibility ---------------------------------------------------------
   The serving tier extracts feature vectors itself, so a loaded model
   must agree with the server's configured feature set in both kind and
   column arity.  A stale checkpoint that disagrees must be rejected with
   a typed error, never loaded to mispredict silently. *)

type mismatch = {
  mm_expected : feature_kind;
  mm_expected_dim : int;
  mm_got : feature_kind;
  mm_got_dim : int;
}

exception Incompatible of mismatch

let mismatch_to_string m =
  Printf.sprintf
    "model features %s (%d column%s) incompatible with configured %s (%d \
     column%s)"
    (feature_kind_to_string m.mm_got)
    m.mm_got_dim
    (if m.mm_got_dim = 1 then "" else "s")
    (feature_kind_to_string m.mm_expected)
    m.mm_expected_dim
    (if m.mm_expected_dim = 1 then "" else "s")

let compat ~features (m : t) =
  let expected_dim = dim_of features in
  let got_dim = Array.length m.weights in
  if m.features = features && got_dim = expected_dim then Ok ()
  else
    Error
      { mm_expected = features; mm_expected_dim = expected_dim;
        mm_got = m.features; mm_got_dim = got_dim }

let check_compat ~features m =
  match compat ~features m with Ok () -> () | Error mm -> raise (Incompatible mm)

(* Predict from a feature vector the caller extracted (the serving hot
   path: no Dataset.sample exists).  Speedup-target models only — a
   cost-target model needs scalar and vector block counts. *)
let predict_vec (m : t) feats =
  if m.target <> Speedup then
    invalid_arg "Linmodel.predict_vec: cost-target model";
  if Array.length feats <> Array.length m.weights then
    invalid_arg
      (Printf.sprintf "Linmodel.predict_vec: %d features against %d weights"
         (Array.length feats) (Array.length m.weights));
  dot m.weights feats

(* --- persistence ----------------------------------------------------------
   A fitted model is a handful of floats; the textual format is one
   key/value pair per line so models can be versioned and diffed. *)

let to_string (m : t) =
  let b = Buffer.create 256 in
  Buffer.add_string b "vecmodel-linmodel v1\n";
  Buffer.add_string b
    (Printf.sprintf "method %s\n" (fit_method_to_string m.method_));
  Buffer.add_string b
    (Printf.sprintf "features %s\n" (feature_kind_to_string m.features));
  Buffer.add_string b (Printf.sprintf "target %s\n" (target_to_string m.target));
  let names = names_of_kind m.features in
  List.iteri
    (fun i n -> Buffer.add_string b (Printf.sprintf "w %s %.17g\n" n m.weights.(i)))
    names;
  Buffer.contents b

let of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char '\n' (String.trim s) with
  | header :: rest when String.equal header "vecmodel-linmodel v1" -> (
      let meta = Hashtbl.create 4 in
      let weights = Hashtbl.create 32 in
      let parse_line line =
        match String.split_on_char ' ' line with
        | [ "method"; v ] | [ "features"; v ] | [ "target"; v ] ->
            Hashtbl.replace meta (List.hd (String.split_on_char ' ' line)) v;
            Ok ()
        | [ "w"; name; v ] -> (
            match float_of_string_opt v with
            | Some f ->
                Hashtbl.replace weights name f;
                Ok ()
            | None -> err "bad weight %s" line)
        | [ "" ] -> Ok ()
        | _ -> err "unparseable line: %s" line
      in
      let rec parse = function
        | [] -> Ok ()
        | l :: ls -> ( match parse_line l with Ok () -> parse ls | e -> e)
      in
      match parse rest with
      | Error e -> Error e
      | Ok () -> (
          let get k = Hashtbl.find_opt meta k in
          let method_ =
            match get "method" with
            | Some "L2" -> Some L2
            | Some "NNLS" -> Some Nnls
            | Some "SVR" -> Some Svr
            | Some "Huber" -> Some Huber
            | _ -> None
          in
          let features =
            match get "features" with
            | Some "raw" -> Some Raw
            | Some "rated" -> Some Rated
            | Some "extended" -> Some Extended
            | Some "absint" -> Some Absint
            | Some "opt" -> Some Opt
            | Some "deps" -> Some Deps
            | Some "cert" -> Some Cert
            | _ -> None
          in
          let target =
            match get "target" with
            | Some "speedup" -> Some Speedup
            | Some "cost" -> Some Cost
            | _ -> None
          in
          match (method_, features, target) with
          | Some method_, Some features, Some target -> (
              let names = names_of_kind features in
              (* Strict arity: a weight naming a column the declared
                 feature set doesn't have means the file was written
                 against a different feature schema — reject it rather
                 than silently dropping the extra columns. *)
              let unknown =
                Hashtbl.fold
                  (fun n _ acc -> if List.mem n names then acc else n :: acc)
                  weights []
              in
              match List.sort compare unknown with
              | u :: _ ->
                  err "unknown weight %s for %s features" u
                    (feature_kind_to_string features)
              | [] ->
              let w =
                List.map
                  (fun n ->
                    match Hashtbl.find_opt weights n with
                    | Some v -> Ok v
                    | None -> err "missing weight %s" n)
                  names
              in
              if List.exists Result.is_error w then
                List.find Result.is_error w |> Result.map (fun _ -> assert false)
              else
                Ok
                  { weights = Array.of_list (List.map Result.get_ok w);
                    method_; features; target })
          | _ -> err "missing or invalid method/features/target header"))
  | _ -> err "not a vecmodel-linmodel v1 file"

(* Atomic: a crash mid-save must never leave a truncated model file. *)
let save m path = Checkpoint.write_atomic path (to_string m)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
