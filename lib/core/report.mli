(** Text rendering of experiment results: tables and ASCII scatter plots.
    All printers default to stdout; pass [?ppf] to capture. *)

type row = { label : string; eval : Metrics.eval }

type result = {
  id : string;
  title : string;
  machine : string;
  transform : string;
  n_samples : int;
  rows : row list;
  notes : string list;
}

val print_header : ?ppf:Format.formatter -> result -> unit
val print_rows : ?ppf:Format.formatter -> result -> unit
val print : ?ppf:Format.formatter -> result -> unit

(** Render a result into a string. *)
val to_string : result -> string

(** ASCII scatter of [ys] against [xs] with the y = x diagonal drawn. *)
val scatter :
  ?ppf:Format.formatter -> ?width:int -> ?height:int -> xlabel:string ->
  ylabel:string -> float array -> float array -> unit

(** Summary table as CSV. *)
val to_csv : result -> string

(** Per-kernel scatter points as CSV. *)
val scatter_csv :
  names:string array -> measured:float array -> predicted:float array -> string

(** Atomic (temp file + fsync + rename): a crash mid-write never leaves a
    truncated file. *)
val write_file : string -> string -> unit

(** ASCII histogram of a sample. *)
val histogram :
  ?ppf:Format.formatter -> ?bins:int -> ?width:int -> label:string ->
  float array -> unit

(** One-line summary of the sample memo cache (hits, misses, hit rate,
    live entries) since the last [Dataset.cache_clear]. *)
val cache_stats_string : unit -> string
