(* Experiment samples: one per TSVC kernel that the transform under study
   can vectorize, with features, baseline prediction and "measured" numbers
   from the machine model. *)

open Vir

type transform = Llv | Slp

let transform_to_string = function Llv -> "llv" | Slp -> "slp"

type sample = {
  name : string;
  category : Tsvc.Category.t;
  kernel : Kernel.t;
  vk : Vvect.Vinstr.vkernel;
  vf : int;
  raw : float array;  (* scalar body instruction-class counts *)
  norm_raw : float array;  (* counts after the Opt normalization pipeline *)
  rated : float array;  (* block-composition features *)
  extended : float array;  (* rated + derived features (extension) *)
  absint : float array;  (* extended + abstract-interpretation columns *)
  opt : float array;  (* absint of normalized body + ratio/hoist columns *)
  vraw : float array;  (* vector body counts (cost-target fits) *)
  measured : float;  (* noisy measured speedup: the ground truth *)
  scalar_cycles_iter : float;  (* noisy per-iteration scalar cycles *)
  vector_cycles_block : float;  (* noisy per-block vector cycles *)
  scalar_total : float;  (* total scalar cycles for the full run *)
  vector_total : float;  (* total vectorized cycles for the full run *)
  baseline : float;  (* baseline model's predicted speedup *)
}

let apply_transform transform ~vf k =
  match transform with
  | Llv -> (
      match Vvect.Llv.vectorize ~vf k with Ok vk -> Some vk | Error _ -> None)
  | Slp -> (
      match Vvect.Slp.vectorize ~vf k with Ok vk -> Some vk | Error _ -> None)

let build_one ~noise_amp ~seed ~(machine : Vmachine.Descr.t) ~transform ~n
    (e : Tsvc.Registry.entry) =
  let k = e.kernel in
  let vf = Vmachine.Descr.vf_for_kernel machine k in
  if vf < 2 then None
  else
    match apply_transform transform ~vf k with
    | None -> None
    | Some vk ->
        let m = Vmachine.Measure.measure ~noise_amp ~seed machine ~n vk in
        let sest = Vmachine.Sched.scalar_estimate machine ~n k in
        let vest = Vmachine.Sched.vector_estimate machine ~n vk in
        (* Independent noise draws for the block-cost targets. *)
        let nf salt =
          Vmachine.Measure.noise_factor ~amp:noise_amp ~seed
            (k.Kernel.name ^ salt) machine.name
        in
        Some
          {
            name = k.Kernel.name;
            category = e.category;
            kernel = k;
            vk;
            vf;
            raw = Feature.counts k;
            norm_raw = Feature.counts (Vanalysis.Opt.normalize k);
            rated = Feature.rated k;
            extended = Feature.extended k;
            absint = Feature.absint ~n ~vf k;
            opt = Feature.opt ~n ~vf k;
            vraw = Feature.vcounts vk;
            measured = m.speedup;
            scalar_cycles_iter = sest.Vmachine.Sched.cycles *. nf "#s";
            vector_cycles_block = vest.Vmachine.Sched.cycles *. nf "#v";
            scalar_total = m.scalar_cycles;
            vector_total = m.scalar_cycles /. m.speedup;
            baseline = Baseline.predicted_speedup vk;
          }

(* --- memoized build ------------------------------------------------------
   Building one sample is the pipeline's unit of repeated work: vectorize,
   run the machine model, extract features.  The experiment drivers rebuild
   the same (kernel, machine, transform, config) combinations up to ~20x
   (F1..F5, T2 and most ablations share NEON/LLV alone), so built samples
   are kept in a content-keyed cache.  Samples are immutable, which makes
   sharing them safe.  The key digests the kernel *content* (not just its
   name), the machine's plain-data fields, the transform, and the full
   config (n, noise_amp, seed); the VF is derived from (machine, kernel)
   and therefore implied by the key. *)

type cache_stats = { hits : int; misses : int; entries : int }

let cache : (string, sample option) Hashtbl.t = Hashtbl.create 1024
let cache_mutex = Mutex.create ()
let cache_enabled = Atomic.make true
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

let set_cache_enabled b = Atomic.set cache_enabled b

let cache_clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let cache_stats () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.length cache in
  Mutex.unlock cache_mutex;
  { hits = Atomic.get cache_hits; misses = Atomic.get cache_misses; entries }

(* The op tables of a machine are closures and cannot be digested; every
   other field is plain data.  Builtin machines differ in name, and
   machine files (Vmachine.Config) rebuild the op tables from the fields
   digested here, so the fingerprint is faithful in both cases. *)
let machine_fingerprint (d : Vmachine.Descr.t) =
  Digest.string
    (String.concat "|"
       [ d.name;
         string_of_int d.vector_bits;
         string_of_int d.issue_width;
         Marshal.to_string d.units [];
         Marshal.to_string d.gather [];
         Marshal.to_string d.mem [];
         string_of_bool d.inorder;
         string_of_int d.loop_uops;
         string_of_float d.vec_setup_cycles ])

let sample_key ~noise_amp ~seed ~machine ~transform ~n
    (e : Tsvc.Registry.entry) =
  Digest.string
    (String.concat "|"
       [ Digest.string (Marshal.to_string e.Tsvc.Registry.kernel []);
         Tsvc.Category.to_string e.category;
         machine_fingerprint machine;
         transform_to_string transform;
         string_of_int n;
         string_of_float noise_amp;
         string_of_int seed ])

let build_one_cached ~noise_amp ~seed ~machine ~transform ~n e =
  if not (Atomic.get cache_enabled) then
    build_one ~noise_amp ~seed ~machine ~transform ~n e
  else begin
    let key = sample_key ~noise_amp ~seed ~machine ~transform ~n e in
    Mutex.lock cache_mutex;
    let found = Hashtbl.find_opt cache key in
    Mutex.unlock cache_mutex;
    match found with
    | Some v ->
        Atomic.incr cache_hits;
        v
    | None ->
        Atomic.incr cache_misses;
        let v = build_one ~noise_amp ~seed ~machine ~transform ~n e in
        Mutex.lock cache_mutex;
        Hashtbl.replace cache key v;
        Mutex.unlock cache_mutex;
        v
  end

let build ?(noise_amp = Vmachine.Measure.default_noise) ?(seed = 1)
    ~(machine : Vmachine.Descr.t) ~transform ~n
    (entries : Tsvc.Registry.entry list) =
  Vpar.Pool.parallel_map
    (build_one_cached ~noise_amp ~seed ~machine ~transform ~n)
    entries
  |> List.filter_map Fun.id

let measured_array samples = Array.of_list (List.map (fun s -> s.measured) samples)
let baseline_array samples = Array.of_list (List.map (fun s -> s.baseline) samples)
