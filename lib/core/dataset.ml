(* Experiment samples: one per TSVC kernel that the transform under study
   can vectorize, with features, baseline prediction and "measured" numbers
   from the machine model.

   Robustness: measurements can be repeated ([?repeats]) with the repeat
   median taken after MAD outlier rejection; samples whose measurement is
   unusable (non-finite or non-positive after rejection, or whose build
   task failed under the supervised pool) are *quarantined* into a
   process-wide health ledger — never silently dropped — and the dataset
   is built through [Vpar.Pool.supervised_map] so one poisoned kernel
   cannot take down a registry-wide run. *)

open Vir

(* Wire the shadow-state sanitizer into the pool's join points: [Vpar]
   cannot depend on the execution runtime, so the hook is installed here,
   where both sides are visible.  [Sanitize.verify] is a no-op unless the
   sanitizer is active, so idle cost is one atomic load per barrier. *)
let () =
  Vpar.Pool.set_join_check (fun () ->
      Vexec.Sanitize.verify ~site:"pool-join")

type transform = Llv | Slp

let transform_to_string = function Llv -> "llv" | Slp -> "slp"

type sample = {
  name : string;
  category : Tsvc.Category.t;
  kernel : Kernel.t;
  vk : Vvect.Vinstr.vkernel;
  vf : int;
  raw : float array;  (* scalar body instruction-class counts *)
  norm_raw : float array;  (* counts after the Opt normalization pipeline *)
  rated : float array;  (* block-composition features *)
  extended : float array;  (* rated + derived features (extension) *)
  absint : float array;  (* extended + abstract-interpretation columns *)
  opt : float array;  (* absint of normalized body + ratio/hoist columns *)
  deps : float array;  (* opt + dependence-graph and idiom columns *)
  cert : float array;  (* deps + static safety-certificate columns *)
  vraw : float array;  (* vector body counts (cost-target fits) *)
  exec_backend : string;  (* execution backend that ran the kernel *)
  exec_digest : string;  (* fingerprint of the backend run (Measure.execute) *)
  measured : float;  (* noisy measured speedup: the ground truth *)
  scalar_cycles_iter : float;  (* noisy per-iteration scalar cycles *)
  vector_cycles_block : float;  (* noisy per-block vector cycles *)
  scalar_total : float;  (* total scalar cycles for the full run *)
  vector_total : float;  (* total vectorized cycles for the full run *)
  baseline : float;  (* baseline model's predicted speedup *)
}

let apply_transform transform ~vf k =
  match transform with
  | Llv -> (
      match Vvect.Llv.vectorize ~vf k with Ok vk -> Some vk | Error _ -> None)
  | Slp -> (
      match Vvect.Slp.vectorize ~vf k with Ok vk -> Some vk | Error _ -> None)

(* --- health ledger --------------------------------------------------------
   Every sample that cannot enter the dataset leaves a trace here.  The
   ledger is process-wide (like the sample cache) and deduplicated, so a
   cache hit on a quarantined entry re-reports it without duplicating. *)

type quarantine = {
  q_name : string;  (* kernel *)
  q_machine : string;
  q_transform : string;
  q_reason : string;
}

type health = {
  h_quarantined : quarantine list;  (* oldest first *)
  h_cache_corruptions : int;  (* corrupted cache entries detected + rebuilt *)
  h_repeats_rejected : int;  (* repeat measurements discarded by MAD *)
}

let quarantined : quarantine list ref = ref []
let quarantine_seen : (quarantine, unit) Hashtbl.t = Hashtbl.create 64
let health_mutex = Mutex.create ()
let cache_corruptions = Atomic.make 0
let repeats_rejected = Atomic.make 0

let quarantine q =
  Mutex.lock health_mutex;
  if not (Hashtbl.mem quarantine_seen q) then begin
    Hashtbl.add quarantine_seen q ();
    quarantined := q :: !quarantined
  end;
  Mutex.unlock health_mutex

let health () =
  Mutex.lock health_mutex;
  let qs = List.rev !quarantined in
  Mutex.unlock health_mutex;
  { h_quarantined = qs;
    h_cache_corruptions = Atomic.get cache_corruptions;
    h_repeats_rejected = Atomic.get repeats_rejected }

let health_reset () =
  Mutex.lock health_mutex;
  quarantined := [];
  Hashtbl.reset quarantine_seen;
  Mutex.unlock health_mutex;
  Atomic.set cache_corruptions 0;
  Atomic.set repeats_rejected 0

(* --- robust measurement ---------------------------------------------------
   [repeats <= 1] reproduces the single-shot behaviour bit-for-bit.  With
   k >= 2 repeats the speedup is re-measured under derived seeds, repeats
   outside 3.5 normalized MADs of the median are rejected (and counted),
   and the median of the survivors is used.  Non-finite repeats (injected
   NaN / Inf) are rejected the same way; if nothing survives, the sample
   is quarantined. *)

let usable x = Float.is_finite x && x > 0.0

let mad_partition xs =
  let arr = Array.of_list xs in
  let med = Vstats.Descriptive.median arr in
  let mad =
    Vstats.Descriptive.median (Array.map (fun x -> Float.abs (x -. med)) arr)
  in
  let scale = 1.4826 *. mad in
  if scale <= 1e-12 *. Float.max 1.0 (Float.abs med) then (xs, [])
  else List.partition (fun x -> Float.abs (x -. med) <= 3.5 *. scale) xs

let robust_speedup ~noise_amp ~seed ~repeats ~(machine : Vmachine.Descr.t) ~n
    vk =
  let measure s = Vmachine.Measure.measure ~noise_amp ~seed:s machine ~n vk in
  if repeats <= 1 then
    let m = measure seed in
    if usable m.Vmachine.Measure.speedup then Ok m
    else
      Error
        (Printf.sprintf "unusable measured speedup (%h)"
           m.Vmachine.Measure.speedup)
  else begin
    (* Distinct derived seeds give independent noise (and independent
       fault-injection keys) per repeat; the first repeat keeps the
       original seed so k=1 and the first draw of k>1 agree. *)
    let ms =
      List.init repeats (fun r ->
          measure (if r = 0 then seed else seed + (7919 * r)))
    in
    let speedups = List.map (fun m -> m.Vmachine.Measure.speedup) ms in
    let finite, broken = List.partition usable speedups in
    List.iter (fun _ -> Atomic.incr repeats_rejected) broken;
    match finite with
    | [] -> Error "all repeat measurements unusable (non-finite speedup)"
    | _ ->
        let kept, outliers = mad_partition finite in
        List.iter (fun _ -> Atomic.incr repeats_rejected) outliers;
        let med = Vstats.Descriptive.median (Array.of_list kept) in
        let m0 = List.hd ms in
        Ok { m0 with Vmachine.Measure.speedup = med }
  end

(* --- building one sample -------------------------------------------------- *)

(* What building an entry produced; cached as-is so hits on quarantined
   entries re-report instead of silently vanishing. *)
type build_outcome =
  | Built of sample
  | Not_vectorizable
  | Quarantined of string

(* When enabled, scalar executions run under the kernel's static safety
   certificate: guard-free kernels skip the per-bind interval derivation
   and run the unchecked body directly (with the bind-time check demoted
   to a licensing cross-check).  Results are digest-identical either way —
   the exec equivalence tests assert it — so this is purely an execution
   strategy, off by default. *)
let static_licensing = Atomic.make false
let set_static_licensing b = Atomic.set static_licensing b

let build_one ~noise_amp ~seed ~repeats ~backend ~(machine : Vmachine.Descr.t)
    ~transform ~n (e : Tsvc.Registry.entry) =
  let k = e.kernel in
  let vf = Vmachine.Descr.vf_for_kernel machine k in
  if vf < 2 then Not_vectorizable
  else
    match apply_transform transform ~vf k with
    | None -> Not_vectorizable
    | Some vk -> (
        match robust_speedup ~noise_amp ~seed ~repeats ~machine ~n vk with
        | Error reason -> Quarantined reason
        | Ok m ->
            (* Actually execute the scalar kernel on the selected backend;
               the repeats reuse one environment via [Env.reset] and the
               digest is checked for stability across them. *)
            let cert_summary = Vanalysis.Cert.certify ~vf k in
            let ex =
              let license =
                if Atomic.get static_licensing then
                  Some (Vanalysis.Cert.license cert_summary)
                else None
              in
              Vmachine.Measure.execute ?license ~backend ~seed ~repeats ~n k
            in
            let sest = Vmachine.Sched.scalar_estimate machine ~n k in
            let vest = Vmachine.Sched.vector_estimate machine ~n vk in
            (* Independent noise draws for the block-cost targets. *)
            let nf salt =
              Vmachine.Measure.noise_factor ~amp:noise_amp ~seed
                (k.Kernel.name ^ salt) machine.name
            in
            Built
              {
                name = k.Kernel.name;
                category = e.category;
                kernel = k;
                vk;
                vf;
                raw = Feature.counts k;
                norm_raw = Feature.counts (Vanalysis.Opt.normalize k);
                rated = Feature.rated k;
                extended = Feature.extended k;
                absint = Feature.absint ~n ~vf k;
                opt = Feature.opt ~n ~vf k;
                deps = Feature.deps ~n ~vf k;
                cert = Feature.cert ~n ~vf k;
                vraw = Feature.vcounts vk;
                exec_backend = Vexec.Backend.to_string backend;
                exec_digest = ex.Vmachine.Measure.exec_digest;
                measured = m.speedup;
                scalar_cycles_iter = sest.Vmachine.Sched.cycles *. nf "#s";
                vector_cycles_block = vest.Vmachine.Sched.cycles *. nf "#v";
                scalar_total = m.scalar_cycles;
                vector_total = m.scalar_cycles /. m.speedup;
                baseline = Baseline.predicted_speedup vk;
              })

(* --- memoized build ------------------------------------------------------
   Building one sample is the pipeline's unit of repeated work: vectorize,
   run the machine model, extract features.  The experiment drivers rebuild
   the same (kernel, machine, transform, config) combinations up to ~20x
   (F1..F5, T2 and most ablations share NEON/LLV alone), so built samples
   are kept in a content-keyed cache.  Samples are immutable, which makes
   sharing them safe.  The key digests the kernel *content* (not just its
   name), the machine's plain-data fields, the transform, the full config
   (n, noise_amp, seed, repeats) and the active fault plan — a plan change
   must never serve samples built under a different plan.  The VF is
   derived from (machine, kernel) and therefore implied by the key. *)

type cache_stats = { hits : int; misses : int; entries : int }

let cache : (string, build_outcome) Hashtbl.t = Hashtbl.create 1024
let cache_mutex = Mutex.create ()
let cache_enabled = Atomic.make true
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

let set_cache_enabled b = Atomic.set cache_enabled b

let cache_clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let cache_stats () =
  Mutex.lock cache_mutex;
  let entries = Hashtbl.length cache in
  Mutex.unlock cache_mutex;
  { hits = Atomic.get cache_hits; misses = Atomic.get cache_misses; entries }

(* The op tables of a machine are closures and cannot be digested; every
   other field is plain data.  Builtin machines differ in name, and
   machine files (Vmachine.Config) rebuild the op tables from the fields
   digested here, so the fingerprint is faithful in both cases. *)
let machine_fingerprint (d : Vmachine.Descr.t) =
  Digest.string
    (String.concat "|"
       [ d.name;
         string_of_int d.vector_bits;
         string_of_int d.issue_width;
         Marshal.to_string d.units [];
         Marshal.to_string d.gather [];
         Marshal.to_string d.mem [];
         string_of_bool d.inorder;
         string_of_int d.loop_uops;
         string_of_float d.vec_setup_cycles ])

let sample_key ~noise_amp ~seed ~repeats ~backend ~machine ~transform ~n
    (e : Tsvc.Registry.entry) =
  Digest.string
    (String.concat "|"
       [ Digest.string (Marshal.to_string e.Tsvc.Registry.kernel []);
         Tsvc.Category.to_string e.category;
         machine_fingerprint machine;
         transform_to_string transform;
         string_of_int n;
         string_of_float noise_amp;
         string_of_int seed;
         string_of_int repeats;
         (* Backend id: switching backends must never serve samples whose
            execution digest another backend produced. *)
         "exec:" ^ Vexec.Backend.to_string backend;
         Vfault.Plan.to_string (Vfault.Inject.active ()) ])

let record_outcome ~machine ~transform name = function
  | Quarantined reason ->
      quarantine
        { q_name = name;
          q_machine = machine;
          q_transform = transform_to_string transform;
          q_reason = reason }
  | Built _ | Not_vectorizable -> ()

let build_one_cached ~noise_amp ~seed ~repeats ~backend
    ~(machine : Vmachine.Descr.t) ~transform ~n (e : Tsvc.Registry.entry) =
  let kname = e.Tsvc.Registry.kernel.Kernel.name in
  let outcome =
    if not (Atomic.get cache_enabled) then
      build_one ~noise_amp ~seed ~repeats ~backend ~machine ~transform ~n e
    else begin
      let key =
        sample_key ~noise_amp ~seed ~repeats ~backend ~machine ~transform ~n e
      in
      Mutex.lock cache_mutex;
      let found = Hashtbl.find_opt cache key in
      Mutex.unlock cache_mutex;
      let found =
        (* Simulated storage corruption: the entry fails its checksum, is
           evicted, and the sample is rebuilt from scratch. *)
        match found with
        | Some _
          when Vfault.Inject.cache_corrupt ~key:(Digest.to_hex key) ->
            Atomic.incr cache_corruptions;
            Mutex.lock cache_mutex;
            Hashtbl.remove cache key;
            Mutex.unlock cache_mutex;
            None
        | f -> f
      in
      match found with
      | Some v ->
          Atomic.incr cache_hits;
          v
      | None ->
          Atomic.incr cache_misses;
          let v =
            build_one ~noise_amp ~seed ~repeats ~backend ~machine ~transform ~n
              e
          in
          Mutex.lock cache_mutex;
          Hashtbl.replace cache key v;
          Mutex.unlock cache_mutex;
          v
    end
  in
  record_outcome ~machine:machine.name ~transform kname outcome;
  outcome

let default_timeout = 0.5

let build ?(noise_amp = Vmachine.Measure.default_noise) ?(seed = 1)
    ?(repeats = 1) ?backend ?pool ?(timeout_s = default_timeout)
    ~(machine : Vmachine.Descr.t) ~transform ~n
    (entries : Tsvc.Registry.entry list) =
  let backend =
    match backend with Some b -> b | None -> Vexec.Backend.default ()
  in
  let arr = Array.of_list entries in
  (* Content-derived task keys: fault decisions follow the kernel, not the
     position of the task in the queue or the worker running it. *)
  let task_key i =
    arr.(i).Tsvc.Registry.kernel.Kernel.name
    ^ "@" ^ machine.name ^ "/" ^ transform_to_string transform
  in
  let results =
    Vpar.Pool.supervised_map ?pool ~timeout_s ~task_key
      (build_one_cached ~noise_amp ~seed ~repeats ~backend ~machine ~transform
         ~n)
      entries
  in
  List.concat
    (List.mapi
       (fun i result ->
         match result with
         | Ok (Built s) -> [ s ]
         | Ok Not_vectorizable -> []
         | Ok (Quarantined _) -> [] (* recorded by build_one_cached *)
         | Error (f : Vpar.Pool.failure) ->
             quarantine
               { q_name = arr.(i).Tsvc.Registry.kernel.Kernel.name;
                 q_machine = machine.name;
                 q_transform = transform_to_string transform;
                 q_reason =
                   Printf.sprintf "build task failed after %d attempt(s): %s"
                     f.f_attempts f.f_error };
             [])
       results)

(* Which backend produced the cached samples currently live in the cache:
   [(backend, count)] sorted by backend name.  Negative entries
   (non-vectorizable, quarantined) carry no execution and are not counted. *)
let cache_backends () =
  Mutex.lock cache_mutex;
  let counts = Hashtbl.create 4 in
  Hashtbl.iter
    (fun _ outcome ->
      match outcome with
      | Built s ->
          let c =
            match Hashtbl.find_opt counts s.exec_backend with
            | Some c -> c
            | None -> 0
          in
          Hashtbl.replace counts s.exec_backend (c + 1)
      | Not_vectorizable | Quarantined _ -> ())
    cache;
  Mutex.unlock cache_mutex;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let measured_array samples = Array.of_list (List.map (fun s -> s.measured) samples)
let baseline_array samples = Array.of_list (List.map (fun s -> s.baseline) samples)
