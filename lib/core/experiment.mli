(** Drivers for every table and figure of the paper plus the ablations.
    Ids follow DESIGN.md: F1..F8 are the slides' figures, T1/T2 the tables,
    A1/A2 this repo's ablations. *)

type config = { n : int; noise_amp : float; seed : int }

val default_config : config

(** Build the sample set for a machine/transform pair. *)
val samples :
  ?config:config -> machine:Vmachine.Descr.t -> transform:Dataset.transform ->
  unit -> Dataset.sample list

(** LOOCV predictions for a (method, features, target) spec, memoized on a
    content key of the spec and the samples' float payloads.  Experiments
    repeating a validation row (F4, T2 and A4 all share the NNLS/rated
    row) pay the n refits once. *)
val loocv_predictions :
  method_:Linmodel.fit_method -> features:Linmodel.feature_kind ->
  target:Linmodel.target -> Dataset.sample list -> float array

(** Counters for the LOOCV prediction cache, [Dataset.cache_stats]-shaped. *)
val loocv_cache_stats : unit -> Dataset.cache_stats

(** Drop every memoized prediction vector and reset the counters. *)
val loocv_cache_clear : unit -> unit

(** F1: state of the art, baseline model on ARM. *)
val f1 : ?config:config -> unit -> Report.result

(** F2: fitted for speedup on ARM (L2, NNLS over raw counts). *)
val f2 : ?config:config -> unit -> Report.result

(** F3: rated instruction-count features on ARM. *)
val f3 : ?config:config -> unit -> Report.result

(** F4: LOOCV of the NNLS fit on ARM. *)
val f4 : ?config:config -> unit -> Report.result

(** F5: LOOCV of the L2 fit on ARM. *)
val f5 : ?config:config -> unit -> Report.result

(** F6: state of the art on x86 (SLP after unrolling, AVX2). *)
val f6 : ?config:config -> unit -> Report.result

(** F7: fitted for cost on x86 (L2, NNLS, SVR). *)
val f7 : ?config:config -> unit -> Report.result

(** F8: fitted for speedup on x86 (L2, NNLS, SVR). *)
val f8 : ?config:config -> unit -> Report.result

(** F9: extended features with vs without the abstract-interpretation
    columns (aligned-access fraction, provable trip count); the note
    reports the correlation delta. *)
val f9 : ?config:config -> unit -> Report.result

(** F10: fitting on [Vanalysis.Opt]-normalized instruction counts vs raw
    source-level counts (same measurements); the note reports the
    correlation delta, and a third row exercises the [opt] feature kind. *)
val f10 : ?config:config -> unit -> Report.result

(** F11 (robustness): contaminate 0–20% of the measured speedups with
    heavy-tailed two-sided spikes, fit L2 and Huber-IRLS on the
    contaminated data and score both against the clean measurements; the
    notes report the per-rate correlation and false-prediction gap. *)
val f11 : ?config:config -> unit -> Report.result

(** F12 (dependence features): fit with and without the nest-wide
    dependence-graph columns (tightest carried distance, carried counts
    per depth, idiom flags); the notes report the correlation delta and
    the legality oracle's precision/recall against the validator. *)
val f12 : ?config:config -> unit -> Report.result

(** F13 (safety certificates): fit with and without the static
    safety-certificate columns (certified-safe access fraction, guard-free
    license flag from the relational bounds prover); the notes report the
    correlation delta and the registry certification census against the
    bind-time interval baseline. *)
val f13 : ?config:config -> unit -> Report.result

type t1_row = {
  t1_transform : string;
  t1_baseline : float;
  t1_refined : float;
  t1_measured : float;
}

type t1_result = { t1_kernel : string; t1_rows : t1_row list }

(** T1: LLV vs SLP on the kernel where they disagree the most. *)
val t1 : ?config:config -> unit -> t1_result

(** T2: summary, baseline vs refined model on ARM. *)
val t2 : ?config:config -> unit -> Report.result

(** A1 (ablation): which features carry the signal. *)
val a1 : ?config:config -> unit -> Report.result

(** A2 (ablation): 128-bit vs 256-bit ARM machine. *)
val a2 : ?config:config -> unit -> Report.result * Report.result

(** Sample transformer used by A1: collapse the access-pattern split. *)
val collapse_access : Dataset.sample -> Dataset.sample

(** A3 (ablation): out-of-order big core vs in-order little core. *)
val a3 : ?config:config -> unit -> Report.result * Report.result

(** A4 (extension): extended feature set, evaluated out-of-sample. *)
val a4 : ?config:config -> unit -> Report.result

(** A5 (extension): f64/i32 typed-variant coverage. *)
val a5 : ?config:config -> unit -> Report.result

type a6_row = {
  a6_name : string;
  a6_analytic : string;
  a6_simulated : string;
  a6_bytes_per_elem : float;
  a6_agrees : bool;
}

type a6_result = {
  a6_machine : string;
  a6_total : int;
  a6_agreeing : int;
  a6_rows : a6_row list;
}

(** A6 (validation): analytic memory level vs trace-driven cache simulation
    over the whole suite. *)
val a6 : ?config:config -> unit -> a6_result

type a7_result = { a7_machine : string; a7_rows : Select.summary list }

(** A7 (extension): per-kernel transformation selection (scalar / LLV / SLP)
    under different predictors, generalizing T1. *)
val a7 : ?config:config -> unit -> a7_result

(** A8 (extension): out-of-distribution generalization from TSVC to
    application kernels (stencils, linear algebra, imaging). *)
val a8 : ?config:config -> unit -> Report.result

type a9_row = {
  a9_ic : int;
  a9_geo_all : float;
  a9_geo_red : float;
  a9_kernels : int;
}

type a9_result = { a9_machine : string; a9_rows : a9_row list }

(** A9 (extension): interleaving (multiple accumulators) — the knob the
    paper's setup disables — measured across the suite. *)
val a9 : ?config:config -> unit -> a9_result

(** A10 (ablation): feature extraction before vs after IR cleanup
    (constant folding, CSE, DCE). *)
val a10 : ?config:config -> unit -> Report.result
