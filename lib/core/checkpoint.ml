(* Crash-safe persistence: atomic file writes and a checksummed,
   line-oriented experiment journal.

   [write_atomic] writes to a temporary file in the *same directory* as
   the target (rename(2) is only atomic within a filesystem), fsyncs it,
   and renames it over the target: a reader never observes a truncated or
   half-written file, and a crash mid-write leaves the previous contents
   intact.

   The journal records completed units of a long run ([bench json]
   experiments) so a restart resumes instead of recomputing.  Each entry
   is one line — [v1 TAB id TAB md5(payload) TAB escaped-payload] — and
   loading drops any line whose checksum does not match, so a crash that
   truncates the final line costs exactly that entry, never the file. *)

let version_tag = "v1"

let write_atomic path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () -> if not !ok then try Sys.remove tmp with _ -> ())
    (fun () ->
      let fd = Unix.openfile tmp [ O_WRONLY; O_TRUNC ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let n = String.length contents in
          let written = Unix.write_substring fd contents 0 n in
          if written <> n then failwith "Checkpoint.write_atomic: short write";
          Unix.fsync fd);
      Sys.rename tmp path;
      ok := true)

module Journal = struct
  type t = { path : string; mutable entries : (string * string) list }
  (* [entries] newest-last, one per id (later wins). *)

  (* Payloads may contain tabs/newlines; escape to keep one entry = one
     line. *)
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let unescape s =
    let b = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    while !i < n do
      (if s.[!i] = '\\' && !i + 1 < n then begin
         (match s.[!i + 1] with
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | c -> Buffer.add_char b c);
         i := !i + 2
       end
       else begin
         Buffer.add_char b s.[!i];
         incr i
       end)
    done;
    Buffer.contents b

  (* The id is escaped like the payload: ids are caller-chosen strings
     and must not be able to break the tab framing. *)
  let line id payload =
    let esc = escape payload in
    Printf.sprintf "%s\t%s\t%s\t%s" version_tag (escape id)
      (Digest.to_hex (Digest.string esc))
      esc

  let parse_line l =
    match String.split_on_char '\t' l with
    | [ tag; id; sum; esc ]
      when tag = version_tag && Digest.to_hex (Digest.string esc) = sum ->
        Some (unescape id, unescape esc)
    | _ -> None (* truncated, corrupted or foreign line: skip it *)

  let load path =
    let entries =
      if not (Sys.file_exists path) then []
      else begin
        let ic = open_in_bin path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        close_in ic;
        List.rev !lines |> List.filter_map parse_line
      end
    in
    (* Deduplicate by id, keeping the newest entry. *)
    let seen = Hashtbl.create 16 in
    let entries =
      List.rev entries
      |> List.filter (fun (id, _) ->
             if Hashtbl.mem seen id then false
             else begin
               Hashtbl.add seen id ();
               true
             end)
      |> List.rev
    in
    { path; entries }

  let find t id = List.assoc_opt id t.entries

  let mem t id = find t id <> None

  let entries t = t.entries

  (* The journal is small (one line per experiment), so each record
     rewrites the whole file atomically: the journal itself can never be
     left truncated mid-entry by a crash. *)
  let record t id payload =
    t.entries <- List.filter (fun (i, _) -> i <> id) t.entries @ [ (id, payload) ];
    write_atomic t.path
      (String.concat ""
         (List.map (fun (i, p) -> line i p ^ "\n") t.entries))

  let clear t =
    t.entries <- [];
    if Sys.file_exists t.path then try Sys.remove t.path with _ -> ()
end
