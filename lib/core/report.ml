(* Text rendering of experiment results: fixed-width tables and an ASCII
   scatter plot of estimated vs measured speedup (the paper's figures are
   exactly such scatters).  All printers accept an optional formatter so the
   tests can capture output. *)

type row = { label : string; eval : Metrics.eval }

type result = {
  id : string;
  title : string;
  machine : string;
  transform : string;
  n_samples : int;
  rows : row list;
  notes : string list;
}

let std = Format.std_formatter

let print_header ?(ppf = std) (r : result) =
  Format.fprintf ppf "\n== %s: %s ==\n" r.id r.title;
  Format.fprintf ppf "   machine %s, transform %s, %d vectorizable TSVC kernels\n"
    r.machine r.transform r.n_samples

let print_rows ?(ppf = std) (r : result) =
  Format.fprintf ppf "   %-28s %7s %13s %7s %7s %4s %4s %5s %12s\n" "model"
    "r" "r 95% CI" "rho" "RMSE" "FP" "FN" "acc" "exec(Mcyc)";
  List.iter
    (fun { label; eval } ->
      let lo, hi = eval.Metrics.pearson_ci in
      Format.fprintf ppf
        "   %-28s %7.3f [%5.2f,%5.2f] %7.3f %7.3f %4d %4d %5.2f %12.2f\n"
        label eval.Metrics.pearson lo hi eval.Metrics.spearman eval.Metrics.rmse
        eval.Metrics.confusion.Vstats.Confusion.fp
        eval.Metrics.confusion.Vstats.Confusion.fn
        (Vstats.Confusion.accuracy eval.Metrics.confusion)
        (eval.Metrics.exec_cycles /. 1e6))
    r.rows;
  (match r.rows with
  | { eval; _ } :: _ ->
      Format.fprintf ppf "   %-28s %54s %12.2f\n" "(oracle)" ""
        (eval.Metrics.oracle_cycles /. 1e6);
      Format.fprintf ppf "   %-28s %54s %12.2f\n" "(never vectorize)" ""
        (eval.Metrics.scalar_cycles /. 1e6);
      Format.fprintf ppf "   %-28s %54s %12.2f\n" "(always vectorize)" ""
        (eval.Metrics.always_cycles /. 1e6)
  | [] -> ());
  List.iter (fun n -> Format.fprintf ppf "   note: %s\n" n) r.notes

let print ?(ppf = std) (r : result) =
  print_header ~ppf r;
  print_rows ~ppf r;
  Format.pp_print_flush ppf ()

(* Render a result into a string (used by the tests). *)
let to_string (r : result) =
  let b = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer b in
  print ~ppf r;
  Buffer.contents b

(* --- ASCII scatter ------------------------------------------------------ *)

let scatter ?(ppf = std) ?(width = 56) ?(height = 18) ~xlabel ~ylabel
    (xs : float array) (ys : float array) =
  let n = Array.length xs in
  if n = 0 then Format.fprintf ppf "   (no data)\n"
  else begin
    let finite v = if Float.is_finite v then v else 0.0 in
    let xs = Array.map finite xs and ys = Array.map finite ys in
    let xmax =
      Float.max 1.0 (Array.fold_left Float.max neg_infinity xs) +. 0.2
    in
    let ymax =
      Float.max 1.0 (Array.fold_left Float.max neg_infinity ys) +. 0.2
    in
    let xmin = Float.min 0.0 (Array.fold_left Float.min infinity xs) in
    let ymin = Float.min 0.0 (Array.fold_left Float.min infinity ys) in
    let grid = Array.make_matrix height width ' ' in
    let put x y c =
      let gx =
        int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1))
      in
      let gy =
        int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1))
      in
      if gx >= 0 && gx < width && gy >= 0 && gy < height then
        grid.(height - 1 - gy).(gx) <- c
    in
    (* The y = x diagonal: perfect prediction. *)
    let steps = 200 in
    for s = 0 to steps do
      let v = xmin +. (float_of_int s /. float_of_int steps *. (xmax -. xmin)) in
      if v >= ymin && v <= ymax then put v v '.'
    done;
    Array.iteri (fun i x -> put x ys.(i) 'o') xs;
    Format.fprintf ppf "   %s vs %s (o = kernel, . = perfect prediction)\n"
      ylabel xlabel;
    Array.iter
      (fun line ->
        Format.fprintf ppf "   |%s|\n" (String.init width (Array.get line)))
      grid;
    Format.fprintf ppf "   +%s+\n" (String.make width '-');
    Format.fprintf ppf "   x: %s in [%.1f, %.1f], y: %s in [%.1f, %.1f]\n"
      xlabel xmin xmax ylabel ymin ymax;
    Format.pp_print_flush ppf ()
  end

(* --- CSV export ----------------------------------------------------------- *)

(* Summary table of a result as CSV (for external plotting). *)
let to_csv (r : result) =
  let b = Buffer.create 512 in
  Buffer.add_string b
    "experiment,model,pearson,ci_lo,ci_hi,spearman,rmse,fp,fn,accuracy,exec_cycles\n";
  List.iter
    (fun { label; eval } ->
      let lo, hi = eval.Metrics.pearson_ci in
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%.4f,%.1f\n" r.id
           label eval.Metrics.pearson lo hi eval.Metrics.spearman
           eval.Metrics.rmse eval.Metrics.confusion.Vstats.Confusion.fp
           eval.Metrics.confusion.Vstats.Confusion.fn
           (Vstats.Confusion.accuracy eval.Metrics.confusion)
           eval.Metrics.exec_cycles))
    r.rows;
  Buffer.contents b

(* Per-kernel scatter points as CSV. *)
let scatter_csv ~names ~measured ~predicted =
  let b = Buffer.create 512 in
  Buffer.add_string b "kernel,measured,predicted\n";
  Array.iteri
    (fun i name ->
      Buffer.add_string b
        (Printf.sprintf "%s,%.6f,%.6f\n" name measured.(i) predicted.(i)))
    names;
  Buffer.contents b

(* Atomic (temp file + fsync + rename): a reader racing the writer, or a
   crash mid-write, never observes a truncated report. *)
let write_file path contents = Checkpoint.write_atomic path contents

(* --- ASCII histogram ------------------------------------------------------- *)

let histogram ?(ppf = std) ?(bins = 12) ?(width = 40) ~label (xs : float array) =
  if Array.length xs = 0 then Format.fprintf ppf "   (no data)\n"
  else begin
    let lo = Array.fold_left Float.min xs.(0) xs in
    let hi = Array.fold_left Float.max xs.(0) xs +. 1e-9 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun v ->
        let b =
          int_of_float ((v -. lo) /. (hi -. lo) *. float_of_int bins)
          |> max 0 |> min (bins - 1)
        in
        counts.(b) <- counts.(b) + 1)
      xs;
    let cmax = Array.fold_left max 1 counts in
    Format.fprintf ppf "   %s (n = %d)\n" label (Array.length xs);
    Array.iteri
      (fun b c ->
        let from = lo +. (float_of_int b /. float_of_int bins *. (hi -. lo)) in
        let till = lo +. (float_of_int (b + 1) /. float_of_int bins *. (hi -. lo)) in
        let bar = String.make (c * width / cmax) '#' in
        Format.fprintf ppf "   %5.2f-%5.2f |%-*s %d\n" from till width bar c)
      counts;
    Format.pp_print_flush ppf ()
  end

(* --- sample-cache report ---------------------------------------------------
   One line summarizing Dataset's memo cache, printed by the CLI's
   [cachestats] subcommand and by the bench harness after a run. *)

let cache_stats_string () =
  let s = Dataset.cache_stats () in
  let total = s.Dataset.hits + s.Dataset.misses in
  let rate =
    if total = 0 then 0.0
    else 100.0 *. float_of_int s.Dataset.hits /. float_of_int total
  in
  let backends =
    match Dataset.cache_backends () with
    | [] -> ""
    | per_backend ->
        "; by backend: "
        ^ String.concat ", "
            (List.map (fun (b, n) -> Printf.sprintf "%s %d" b n) per_backend)
  in
  Printf.sprintf
    "sample cache: %d hits, %d misses (%.1f%% hit rate), %d live entries%s"
    s.Dataset.hits s.Dataset.misses rate s.Dataset.entries backends
