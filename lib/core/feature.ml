(* Feature extraction: the paper formulates each loop body as a linear
   equation over instruction-class counts.  Memory operations are split by
   access pattern (the dominant cost driver), and reductions contribute the
   accumulation they imply.  The same vocabulary describes scalar bodies and
   vectorized bodies, so cost-targeted fits can price both with one weight
   vector. *)

open Vir

type cls =
  | F_int_alu
  | F_int_mul
  | F_int_div
  | F_fp_add
  | F_fp_mul
  | F_fp_fma
  | F_fp_div
  | F_fp_sqrt
  | F_cmp
  | F_select
  | F_cast
  | F_load_unit  (* |stride| = 1 *)
  | F_load_inv  (* loop-invariant address *)
  | F_load_strided  (* |stride| > 1 or row walk *)
  | F_load_gather
  | F_store_unit
  | F_store_strided
  | F_store_scatter
  | F_shuffle  (* lane moves; only nonzero for vector bodies *)
  | F_reduction

let all =
  [ F_int_alu; F_int_mul; F_int_div; F_fp_add; F_fp_mul; F_fp_fma; F_fp_div;
    F_fp_sqrt; F_cmp; F_select; F_cast; F_load_unit; F_load_inv;
    F_load_strided; F_load_gather; F_store_unit; F_store_strided;
    F_store_scatter; F_shuffle; F_reduction ]

let dim = List.length all

let index =
  let tbl = Hashtbl.create 32 in
  List.iteri (fun i c -> Hashtbl.replace tbl c i) all;
  fun c -> Hashtbl.find tbl c

let name = function
  | F_int_alu -> "int_alu"
  | F_int_mul -> "int_mul"
  | F_int_div -> "int_div"
  | F_fp_add -> "fp_add"
  | F_fp_mul -> "fp_mul"
  | F_fp_fma -> "fp_fma"
  | F_fp_div -> "fp_div"
  | F_fp_sqrt -> "fp_sqrt"
  | F_cmp -> "cmp"
  | F_select -> "select"
  | F_cast -> "cast"
  | F_load_unit -> "load_unit"
  | F_load_inv -> "load_inv"
  | F_load_strided -> "load_strided"
  | F_load_gather -> "load_gather"
  | F_store_unit -> "store_unit"
  | F_store_strided -> "store_strided"
  | F_store_scatter -> "store_scatter"
  | F_shuffle -> "shuffle"
  | F_reduction -> "reduction"

let names = List.map name all

let of_opclass (c : Vmachine.Opclass.t) =
  match c with
  | Vmachine.Opclass.Int_alu -> F_int_alu
  | Vmachine.Opclass.Int_mul -> F_int_mul
  | Vmachine.Opclass.Int_div -> F_int_div
  | Vmachine.Opclass.Fp_add -> F_fp_add
  | Vmachine.Opclass.Fp_mul -> F_fp_mul
  | Vmachine.Opclass.Fp_fma -> F_fp_fma
  | Vmachine.Opclass.Fp_div -> F_fp_div
  | Vmachine.Opclass.Fp_sqrt -> F_fp_sqrt
  | Vmachine.Opclass.Cmp -> F_cmp
  | Vmachine.Opclass.Select -> F_select
  | Vmachine.Opclass.Cast -> F_cast
  | Vmachine.Opclass.Load | Vmachine.Opclass.Load_unaligned -> F_load_unit
  | Vmachine.Opclass.Store | Vmachine.Opclass.Store_unaligned -> F_store_unit
  | Vmachine.Opclass.Shuffle -> F_shuffle

let load_cls (stride : Kernel.stride) =
  match stride with
  | Kernel.Sconst 0 -> F_load_inv
  | Kernel.Sconst c when abs c = 1 -> F_load_unit
  | Kernel.Sconst _ | Kernel.Srow _ -> F_load_strided
  | Kernel.Sindirect -> F_load_gather

let store_cls (stride : Kernel.stride) =
  match stride with
  | Kernel.Sconst c when abs c <= 1 -> F_store_unit
  | Kernel.Sconst _ | Kernel.Srow _ -> F_store_strided
  | Kernel.Sindirect -> F_store_scatter

(* Raw instruction-class counts of the scalar loop body. *)
let counts (k : Kernel.t) =
  let f = Array.make dim 0.0 in
  let bump c = f.(index c) <- f.(index c) +. 1.0 in
  List.iter
    (fun (i : Instr.t) ->
      match i with
      | Instr.Load { addr; _ } -> bump (load_cls (Kernel.access_stride k addr))
      | Instr.Store { addr; _ } -> bump (store_cls (Kernel.access_stride k addr))
      | _ -> bump (of_opclass (Vmachine.Opclass.of_instr i)))
    k.body;
  List.iter (fun (_ : Kernel.reduction) -> bump F_reduction) k.reductions;
  f

(* Vector-body counts, for cost-targeted fits: one wide op counts 1, a
   scalarized group counts its parts. *)
let vcounts (vk : Vvect.Vinstr.vkernel) =
  let f = Array.make dim 0.0 in
  let bump ?(by = 1.0) c = f.(index c) <- f.(index c) +. by in
  let vf = float_of_int vk.vf in
  List.iter
    (fun (vi : Vvect.Vinstr.t) ->
      match vi with
      | Vvect.Vinstr.Vbin { ty; op; _ } ->
          bump (of_opclass (Vmachine.Opclass.of_binop ty op))
      | Vvect.Vinstr.Vuna { ty; op; _ } ->
          bump (of_opclass (Vmachine.Opclass.of_unop ty op))
      | Vvect.Vinstr.Vfma _ -> bump F_fp_fma
      | Vvect.Vinstr.Vcmp _ -> bump F_cmp
      | Vvect.Vinstr.Vselect _ -> bump F_select
      | Vvect.Vinstr.Vcast _ -> bump F_cast
      | Vvect.Vinstr.Viota _ -> bump F_int_alu
      | Vvect.Vinstr.Vload { access; _ } -> (
          match access with
          | Vvect.Vinstr.Contig -> bump F_load_unit
          | Vvect.Vinstr.Rev ->
              bump F_load_unit;
              bump F_shuffle
          | Vvect.Vinstr.Strided _ | Vvect.Vinstr.Row ->
              bump ~by:vf F_load_strided;
              bump ~by:vf F_shuffle)
      | Vvect.Vinstr.Vstore { access; _ } -> (
          match access with
          | Vvect.Vinstr.Contig -> bump F_store_unit
          | Vvect.Vinstr.Rev ->
              bump F_store_unit;
              bump F_shuffle
          | Vvect.Vinstr.Strided _ | Vvect.Vinstr.Row ->
              bump ~by:vf F_store_strided;
              bump ~by:vf F_shuffle)
      | Vvect.Vinstr.Vgather _ ->
          bump ~by:vf F_load_gather
      | Vvect.Vinstr.Vscatter _ -> bump ~by:vf F_store_scatter
      | Vvect.Vinstr.Vpack { srcs; _ } ->
          bump ~by:(float_of_int (Array.length srcs)) F_shuffle
      | Vvect.Vinstr.Vextract _ -> bump F_shuffle
      | Vvect.Vinstr.Sc { instr; _ } -> (
          match instr with
          | Instr.Load { addr; _ } ->
              bump (load_cls (Kernel.access_stride vk.scalar addr))
          | Instr.Store { addr; _ } ->
              bump (store_cls (Kernel.access_stride vk.scalar addr))
          | _ -> bump (of_opclass (Vmachine.Opclass.of_instr instr))))
    vk.vbody;
  List.iter (fun (_ : Vvect.Vinstr.vreduction) -> bump F_reduction)
    vk.vreductions;
  f

let total f = Array.fold_left ( +. ) 0.0 f

(* Rated ("block composition") features: each class as a fraction of the
   block, exposing arithmetic intensity to the linear model. *)
let rate f =
  let t = total f in
  if t = 0.0 then Array.copy f else Array.map (fun v -> v /. t) f

let rated k = rate (counts k)

(* --- extended features: the paper's "add more code features" next step --- *)

let mem_classes =
  [ F_load_unit; F_load_inv; F_load_strided; F_load_gather; F_store_unit;
    F_store_strided; F_store_scatter ]

let extended_names = names @ [ "x_intensity"; "x_log_size"; "x_recurrence" ]
let extended_dim = dim + 3

(* Rated features plus three derived ones: arithmetic intensity (compute ops
   per memory op), body size, and the strength of the tightest memory-carried
   flow dependence (1/distance) - the latency chains the linear counts cannot
   see. *)
let extended (k : Kernel.t) =
  let f = counts k in
  let r = rate f in
  let mem =
    List.fold_left (fun acc c -> acc +. f.(index c)) 0.0 mem_classes
  in
  let arith = total f -. mem in
  let intensity = arith /. (mem +. 1.0) in
  let log_size = log (1.0 +. total f) in
  let recurrence =
    List.fold_left
      (fun acc (d : Vdeps.Dependence.dep) ->
        match (d.kind, d.distance) with
        | Vdeps.Dependence.Flow, Vdeps.Dependence.Dconst dist ->
            Float.max acc (1.0 /. float_of_int dist)
        | _ -> acc)
      0.0
      (Vdeps.Dependence.analyze k)
  in
  Array.append r [| intensity; log_size; recurrence |]

(* --- absint features: columns only the abstract interpretation can fill --- *)

let absint_names = extended_names @ [ "x_aligned_frac"; "x_const_trip" ]
let absint_dim = extended_dim + 2

(* Extended features plus the provably-aligned fraction of the body's memory
   accesses at [vf] and a provable-constant-trip-count flag.  Both are facts
   about the *vectorized* execution a pure instruction count cannot see:
   alignment decides which load/store path every block takes, and a constant
   trip count means the epilogue's share never shrinks with n. *)
let absint ~n ~vf (k : Kernel.t) =
  let base = extended k in
  let aligned = Vanalysis.Absint.aligned_fraction ~n ~vf k in
  let const_trip = Vanalysis.Absint.const_trip_flag k in
  Array.append base [| aligned; const_trip |]

(* --- opt features: counts taken after the SSA normalization pipeline --- *)

let opt_names = absint_names @ [ "x_norm_ratio"; "x_hoist_frac" ]
let opt_dim = absint_dim + 2

(* Absint features of the *normalized* body (what the vectorizer actually
   prices), plus two pipeline facts: how much of the source count survives
   GVN/DCE/DSE/folding (source-level redundancy inflates raw counts without
   costing cycles) and the loop-invariant fraction LICM pins to the
   preheader prefix (work the loop does not pay per iteration). *)
let opt ~n ~vf (k : Kernel.t) =
  let nk = Vanalysis.Opt.normalize k in
  let base = absint ~n ~vf nk in
  let orig = total (counts k) in
  let ratio = if orig = 0.0 then 1.0 else total (counts nk) /. orig in
  Array.append base [| ratio; Vanalysis.Opt.hoisted_fraction nk |]

let pp fmt f =
  List.iteri
    (fun i c ->
      if f.(i) <> 0.0 then Format.fprintf fmt "%s=%g " (name c) f.(i))
    all

(* --- deps features: columns only the dependence engine can fill --- *)

let deps_names =
  opt_names
  @ [ "x_min_carried"; "x_carried_outer"; "x_carried_inner";
      "x_idiom_reduction"; "x_idiom_recurrence" ]

let deps_dim = opt_dim + 5

(* Opt features plus what the nest-wide dependence graph knows: the
   tightest loop-carried distance anywhere in the nest (1/distance, the
   serialization pressure a legal-but-narrow width pays), carried-edge
   counts split outer vs innermost (an outer-carried dependence is free for
   the vectorizer, an inner-carried one is exactly what caps the width),
   and the recognized idiom flags (a reduction vectorizes through a
   horizontal combine with its own cost shape; a first-order recurrence
   serializes). *)
let deps ~n ~vf (k : Kernel.t) =
  let base = opt ~n ~vf k in
  let g = Vdeps.Depgraph.build k in
  let per_depth = Vdeps.Depgraph.carried_counts g in
  let depth = Array.length per_depth in
  let inner = if depth = 0 then 0 else per_depth.(depth - 1) in
  let outer = Array.fold_left ( + ) 0 per_depth - inner in
  let min_carried =
    match Vdeps.Depgraph.min_carried_distance g with
    | Some d when d > 0 -> 1.0 /. float_of_int d
    | Some _ -> 1.0
    | None -> 0.0
  in
  let idioms = Vdeps.Idiom.recognize k in
  Array.append base
    [|
      min_carried;
      float_of_int outer;
      float_of_int inner;
      (if Vdeps.Idiom.has_reduction idioms then 1.0 else 0.0);
      (if Vdeps.Idiom.has_recurrence idioms then 1.0 else 0.0);
    |]

let cert_names = deps_names @ [ "x_cert_safe_frac"; "x_cert_guard_free" ]
let cert_dim = deps_dim + 2

(* Deps features plus what the static safety certificate knows: the
   certified-safe fraction of the body's memory accesses and whether the
   whole kernel is licensed guard-free.  Both proxy for how much bounds
   bookkeeping a vectorized loop would carry at run time — a guard-free
   kernel vectorizes without per-block range checks, a low certified
   fraction forecasts guarded (slower) vector bodies. *)
let cert ~n ~vf (k : Kernel.t) =
  let base = deps ~n ~vf k in
  let c = Vanalysis.Cert.certify ~vf k in
  Array.append base
    [|
      Vanalysis.Cert.safe_frac c;
      (if c.Vanalysis.Cert.ct_guard_free then 1.0 else 0.0);
    |]
