(** Crash-safe persistence: atomic file writes and a checksummed
    experiment journal for resumable long runs. *)

(** [write_atomic path contents] writes [contents] to a temporary file in
    the same directory, fsyncs it, and renames it over [path].  A reader
    never observes a truncated file; a crash mid-write leaves the previous
    contents of [path] intact. *)
val write_atomic : string -> string -> unit

(** A line-oriented journal of completed work units.  Each entry is one
    checksummed line ([v1 TAB id TAB md5 TAB escaped-payload]); loading
    silently drops truncated or corrupted lines, so a crash costs at most
    the entry being written.  Every {!Journal.record} rewrites the file
    via {!write_atomic}. *)
module Journal : sig
  type t

  (** Load the journal at [path] ([path] need not exist). *)
  val load : string -> t

  (** The recorded payload for [id], if present. *)
  val find : t -> string -> string option

  val mem : t -> string -> bool

  (** All valid entries, oldest first, one per id (newest wins). *)
  val entries : t -> (string * string) list

  (** Record (or replace) the payload for [id] and persist atomically. *)
  val record : t -> string -> string -> unit

  (** Drop all entries and delete the journal file. *)
  val clear : t -> unit
end
