(** Feature extraction: instruction-class counts of a loop body, with memory
    operations split by access pattern, plus the rated ("block composition")
    variant that exposes arithmetic intensity. *)

type cls =
  | F_int_alu
  | F_int_mul
  | F_int_div
  | F_fp_add
  | F_fp_mul
  | F_fp_fma
  | F_fp_div
  | F_fp_sqrt
  | F_cmp
  | F_select
  | F_cast
  | F_load_unit
  | F_load_inv
  | F_load_strided
  | F_load_gather
  | F_store_unit
  | F_store_strided
  | F_store_scatter
  | F_shuffle
  | F_reduction

val all : cls list

(** Number of feature classes. *)
val dim : int

(** Index of a class within a feature vector. *)
val index : cls -> int

val name : cls -> string
val names : string list

val of_opclass : Vmachine.Opclass.t -> cls
val load_cls : Vir.Kernel.stride -> cls
val store_cls : Vir.Kernel.stride -> cls

(** Raw instruction-class counts of the scalar loop body. *)
val counts : Vir.Kernel.t -> float array

(** Vector-body counts (cost-targeted fits): one wide op counts 1, a
    scalarized group counts its parts. *)
val vcounts : Vvect.Vinstr.vkernel -> float array

val total : float array -> float

(** Normalize counts to fractions of the block. *)
val rate : float array -> float array

val rated : Vir.Kernel.t -> float array

(** Extended feature set: rated features plus arithmetic intensity, body
    size and memory-recurrence strength (1/distance). *)
val extended_names : string list

val extended_dim : int
val extended : Vir.Kernel.t -> float array

(** Absint feature set: extended features plus the provably-aligned fraction
    of memory accesses at [vf] and a provable-constant-trip-count flag, both
    supplied by [Vanalysis.Absint]. *)
val absint_names : string list

val absint_dim : int
val absint : n:int -> vf:int -> Vir.Kernel.t -> float array

(** Opt feature set: absint features of the [Vanalysis.Opt]-normalized body,
    plus the normalized/source count ratio and the loop-invariant (hoisted)
    fraction of the normalized body. *)
val opt_names : string list

val opt_dim : int
val opt : n:int -> vf:int -> Vir.Kernel.t -> float array

(** Deps feature set: opt features plus nest-wide dependence-graph columns
    (tightest carried distance, carried-edge counts split outer/innermost)
    and recognized-idiom flags from [Vdeps]. *)
val deps_names : string list

val deps_dim : int
val deps : n:int -> vf:int -> Vir.Kernel.t -> float array

(** Cert feature set: deps features plus the certified-safe access fraction
    and the guard-free license flag from [Vanalysis.Cert] (relational
    bounds proofs, parametric in n and the runtime parameters). *)
val cert_names : string list

val cert_dim : int
val cert : n:int -> vf:int -> Vir.Kernel.t -> float array
val pp : Format.formatter -> float array -> unit
