(** The refined linear cost models: fitted over instruction-class features
    with L2, NNLS, SVR or robust Huber-IRLS, targeting either the speedup
    directly or block costs shared between scalar and vector code. *)

(** [Huber] is iteratively reweighted least squares under the Huber loss
    (k = 1.345, scale re-estimated as 1.4826 * MAD each iteration): it
    matches L2 on clean data and down-weights heavy-tailed measurement
    outliers instead of letting them steer the fit. *)
type fit_method = L2 | Nnls | Svr | Huber

val fit_method_to_string : fit_method -> string

type feature_kind = Raw | Rated | Extended | Absint | Opt | Deps | Cert

val feature_kind_to_string : feature_kind -> string

type target = Speedup | Cost

val target_to_string : target -> string

type t = {
  weights : float array;
  method_ : fit_method;
  features : feature_kind;
  target : target;
}

(** The feature vector of a sample under a feature kind. *)
val features_of : feature_kind -> Dataset.sample -> float array

(** Fit a model on a sample set.  Cost-target fits use raw counts and two
    rows per kernel (scalar block at vf iterations, vector block). *)
val fit :
  method_:fit_method -> features:feature_kind -> target:target ->
  Dataset.sample list -> t

(** Predicted speedup of one sample under the model. *)
val predict : t -> Dataset.sample -> float

val predict_all : t -> Dataset.sample list -> float array

(** Textual serialization (one key/value per line, versioned header). *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** Atomic (temp file + rename): a crash mid-save never leaves a
    truncated model file. *)
val save : t -> string -> unit
val load : string -> (t, string) result
