(** The refined linear cost models: fitted over instruction-class features
    with L2, NNLS, SVR or robust Huber-IRLS, targeting either the speedup
    directly or block costs shared between scalar and vector code. *)

(** [Huber] is iteratively reweighted least squares under the Huber loss
    (k = 1.345, scale re-estimated as 1.4826 * MAD each iteration): it
    matches L2 on clean data and down-weights heavy-tailed measurement
    outliers instead of letting them steer the fit. *)
type fit_method = L2 | Nnls | Svr | Huber

val fit_method_to_string : fit_method -> string

type feature_kind = Raw | Rated | Extended | Absint | Opt | Deps | Cert

val feature_kind_to_string : feature_kind -> string

type target = Speedup | Cost

val target_to_string : target -> string

(** Feature-column names of a kind, in weight order. *)
val names_of_kind : feature_kind -> string list

(** Column arity of a feature kind. *)
val dim_of : feature_kind -> int

type t = {
  weights : float array;
  method_ : fit_method;
  features : feature_kind;
  target : target;
}

(** The feature vector of a sample under a feature kind. *)
val features_of : feature_kind -> Dataset.sample -> float array

(** Fit a model on a sample set.  Cost-target fits use raw counts and two
    rows per kernel (scalar block at vf iterations, vector block). *)
val fit :
  method_:fit_method -> features:feature_kind -> target:target ->
  Dataset.sample list -> t

(** Predicted speedup of one sample under the model. *)
val predict : t -> Dataset.sample -> float

val predict_all : t -> Dataset.sample list -> float array

(** A loaded model whose feature kind or column arity disagrees with the
    configured feature set.  The serving tier must reject such a model at
    reload time — loading it would mispredict silently. *)
type mismatch = {
  mm_expected : feature_kind;
  mm_expected_dim : int;
  mm_got : feature_kind;
  mm_got_dim : int;
}

exception Incompatible of mismatch

val mismatch_to_string : mismatch -> string

(** Check a model against the configured feature set: kind must match and
    the weight vector must have exactly [dim_of features] columns. *)
val compat : features:feature_kind -> t -> (unit, mismatch) result

(** [compat] or raise {!Incompatible}. *)
val check_compat : features:feature_kind -> t -> unit

(** Predict from an already-extracted feature vector (the serving hot
    path).  Raises [Invalid_argument] on a cost-target model or an arity
    mismatch — call {!compat} first. *)
val predict_vec : t -> float array -> float

(** Textual serialization (one key/value per line, versioned header). *)
val to_string : t -> string

val of_string : string -> (t, string) result

(** Atomic (temp file + rename): a crash mid-save never leaves a
    truncated model file. *)
val save : t -> string -> unit
val load : string -> (t, string) result
