(* Least squares by Householder QR with column pivoting disabled (the fitting
   matrices here are small and well scaled; rank deficiency is handled by
   regularizing the trailing diagonal). *)

exception Singular of string

(* Factor A (m x n, m >= n) in place into R (upper triangle) while applying
   the same reflections to b.  Returns the packed factorization. *)
let factorize a b =
  let m = Mat.rows a and n = Mat.cols a in
  if m < n then invalid_arg "Qr.factorize: need rows >= cols";
  if Array.length b <> m then invalid_arg "Qr.factorize: rhs size mismatch";
  let r = Mat.copy a in
  let qtb = Array.copy b in
  for k = 0 to n - 1 do
    (* Householder vector for column k below the diagonal. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      let v = Mat.get r i k in
      norm := !norm +. (v *. v)
    done;
    let norm = sqrt !norm in
    if norm > 0.0 then begin
      let alpha = if Mat.get r k k > 0.0 then -.norm else norm in
      (* v = x - alpha * e1, normalized so v.(k) = 1 *)
      let vk = Mat.get r k k -. alpha in
      if vk <> 0.0 then begin
        let v = Array.make m 0.0 in
        v.(k) <- 1.0;
        for i = k + 1 to m - 1 do
          v.(i) <- Mat.get r i k /. vk
        done;
        let vtv = ref 0.0 in
        for i = k to m - 1 do
          vtv := !vtv +. (v.(i) *. v.(i))
        done;
        let beta = 2.0 /. !vtv in
        (* Apply H = I - beta v v^T to the remaining columns of r. *)
        for j = k to n - 1 do
          let dot = ref 0.0 in
          for i = k to m - 1 do
            dot := !dot +. (v.(i) *. Mat.get r i j)
          done;
          let s = beta *. !dot in
          for i = k to m - 1 do
            Mat.set r i j (Mat.get r i j -. (s *. v.(i)))
          done
        done;
        (* And to the right-hand side. *)
        let dot = ref 0.0 in
        for i = k to m - 1 do
          dot := !dot +. (v.(i) *. qtb.(i))
        done;
        let s = beta *. !dot in
        for i = k to m - 1 do
          qtb.(i) <- qtb.(i) -. (s *. v.(i))
        done
      end;
      Mat.set r k k alpha;
      for i = k + 1 to m - 1 do
        Mat.set r i k 0.0
      done
    end
  done;
  (r, qtb)

(* Solve the triangular system R x = (Q^T b)[0..n-1]. *)
let back_substitute r qtb =
  let n = Mat.cols r in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref qtb.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get r i j *. x.(j))
    done;
    let d = Mat.get r i i in
    if abs_float d < 1e-12 then
      raise (Singular (Printf.sprintf "zero pivot at column %d" i));
    x.(i) <- !s /. d
  done;
  x

(* Minimize ||A x - b||_2.  @raise Singular when A is (numerically) rank
   deficient. *)
let lstsq a b =
  let r, qtb = factorize a b in
  back_substitute r qtb

(* Leverage scores: the diagonal of the hat matrix
     H = A (A^T A + lambda I)^-1 A^T.
   From A = QR (or the sqrt(lambda)-augmented A for ridge), the normal
   matrix is R^T R, so h_ii = a_i^T (R^T R)^-1 a_i = ||R^-T a_i||^2: one
   forward substitution per row, O(m n^2) total after the factorization.
   These are what make leave-one-out cross-validation of a least-squares
   fit analytic: the held-out residual is e_i / (1 - h_ii). *)
let leverages ?(lambda = 0.0) a =
  if lambda < 0.0 then invalid_arg "Qr.leverages: negative lambda";
  let m = Mat.rows a and n = Mat.cols a in
  let r =
    if lambda = 0.0 then fst (factorize a (Array.make m 0.0))
    else begin
      let sl = sqrt lambda in
      let aug =
        Mat.init (m + n) n (fun i j ->
            if i < m then Mat.get a i j else if i - m = j then sl else 0.0)
      in
      fst (factorize aug (Array.make (m + n) 0.0))
    end
  in
  let h = Array.make m 0.0 in
  let z = Array.make n 0.0 in
  for i = 0 to m - 1 do
    (* Forward-solve R^T z = a_i (R^T is lower triangular). *)
    for j = 0 to n - 1 do
      let s = ref (Mat.get a i j) in
      for t = 0 to j - 1 do
        s := !s -. (Mat.get r t j *. z.(t))
      done;
      let d = Mat.get r j j in
      if abs_float d < 1e-12 then
        raise (Singular (Printf.sprintf "zero pivot at column %d" j));
      z.(j) <- !s /. d
    done;
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (z.(j) *. z.(j))
    done;
    h.(i) <- !acc
  done;
  h

(* Ridge-regularized least squares: minimize ||Ax-b||^2 + lambda ||x||^2 by
   stacking sqrt(lambda) I below A.  Never singular for lambda > 0. *)
let lstsq_ridge ~lambda a b =
  if lambda < 0.0 then invalid_arg "Qr.lstsq_ridge: negative lambda";
  let m = Mat.rows a and n = Mat.cols a in
  let sl = sqrt lambda in
  let aug =
    Mat.init (m + n) n (fun i j ->
        if i < m then Mat.get a i j else if i - m = j then sl else 0.0)
  in
  let baug = Array.append b (Array.make n 0.0) in
  lstsq aug baug
