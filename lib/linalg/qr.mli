(** Householder-QR least squares. *)

exception Singular of string

(** [factorize a b] returns [(r, qtb)] with [r] upper triangular and
    [qtb = Q^T b], for [a] with at least as many rows as columns. *)
val factorize : Mat.t -> float array -> Mat.t * float array

val back_substitute : Mat.t -> float array -> float array

(** Minimize [||a x - b||_2].  @raise Singular on rank deficiency. *)
val lstsq : Mat.t -> float array -> float array

(** Ridge-regularized least squares; never singular for [lambda > 0]. *)
val lstsq_ridge : lambda:float -> Mat.t -> float array -> float array

(** [leverages ?lambda a] is the diagonal of the hat matrix
    [H = A (AᵀA + λ I)⁻¹ Aᵀ] — the leverage score of each of the [m]
    rows — from a single QR factorization in O(m·n²).  [lambda] defaults
    to [0.0] (plain least squares).  These make leave-one-out
    cross-validation of an L2 fit analytic: the held-out residual of row
    [i] is [e_i / (1 - h_i)].  @raise Singular on rank deficiency. *)
val leverages : ?lambda:float -> Mat.t -> float array
