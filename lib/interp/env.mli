(** Execution environment: array storage, parameters, deterministic init. *)

type store = F_arr of float array | I_arr of int array

type t = {
  n : int;
  n2 : int;
  arrays : (string, store) Hashtbl.t;
  params : (string, float) Hashtbl.t;
  frozen : (string, unit) Hashtbl.t;
  mutable on_access : (string -> int -> bool -> unit) option;
}

exception Out_of_bounds of string * int

(** Ownership of a buffer inside an environment: [Frozen] arrays alias the
    process-wide shared master and must never be written; [Owned] arrays
    are private copies of it. *)
type ownership = Frozen | Owned

val ownership : t -> string -> ownership

(** Global write barrier over frozen buffers.  When enabled, any
    interpreter-path write to a [Frozen] array raises [Frozen_write]
    before mutating shared state.  Enabled by the sanitizer
    ([Vexec.Sanitize]); off by default. *)
val set_frozen_guard : bool -> unit

val frozen_guard_enabled : unit -> bool

exception Frozen_write of string * int

(** Deterministic key-sorted fold over the process-wide memoized master
    buffers.  The store views alias the masters themselves — strictly
    read-only. *)
val fold_masters : (string -> store -> 'a -> 'a) -> 'a -> 'a

(** Drop every memoized master (tests recovering from a poisoned table). *)
val clear_masters : unit -> unit

(** Corrupt one memoized master in place (the [sanitize.poison] fault
    hook); returns its printable key, or [None] if no masters exist. *)
val poison_master : unit -> string option

(** Allocate and deterministically initialize state for a kernel at problem
    size [n] (>= 4).  Same seed => bit-identical state.  Distinct buffers
    are initialized once per process (memoized masters) and copied in.

    [readonly name = true] is a caller promise that [name] is never written
    through this environment; the array then aliases the shared master
    instead of copying it.  Pass it only when the set of writes is
    statically known (e.g. the kernel's store set). *)
val create :
  ?seed:int -> ?readonly:(string -> bool) -> n:int -> Vir.Kernel.t -> t

(** Re-initialize in place for a fresh run of the kernel: contents identical
    to [create ?seed ~n:t.n k], reusing existing buffers of matching kind
    and length instead of reallocating (repeat measurements call this
    between repeats).  Parameters are restored to their defaults. *)
val reset : ?seed:int -> t -> Vir.Kernel.t -> unit

val set_param : t -> string -> float -> unit

(** Install / remove a hook called as [f arr idx is_write] on every element
    access (trace-driven cache simulation). *)
val set_trace : t -> (string -> int -> bool -> unit) -> unit

val clear_trace : t -> unit
val param : t -> string -> float
val store : t -> string -> store
val length : t -> string -> int

val read_float : t -> string -> int -> float
val read_int : t -> string -> int -> int
val write_float : t -> string -> int -> float -> unit
val write_int : t -> string -> int -> int -> unit

(** All arrays as float snapshots, sorted by name. *)
val snapshot : t -> (string * float array) list
