(* Execution environment shared by the scalar interpreter and the vectorized
   executor: array storage, parameter bindings and deterministic
   initialization.

   Initialization is pure in (seed, array name, element index), so a scalar
   run and a vector run of the same kernel start from bit-identical state. *)

open Vir

type store = F_arr of float array | I_arr of int array

type t = {
  n : int;
  n2 : int;
  arrays : (string, store) Hashtbl.t;
  params : (string, float) Hashtbl.t;
  frozen : (string, unit) Hashtbl.t;
      (* arrays that alias a shared master instead of owning a copy *)
  mutable on_access : (string -> int -> bool -> unit) option;
      (* called as [f arr idx is_write] on every element access; used by the
         trace-driven cache simulator *)
}

(* Ownership of a buffer inside an environment: [Frozen] arrays alias the
   process-wide master and must never be written (every env in the process
   sees the same words); [Owned] arrays are private copies. *)
type ownership = Frozen | Owned

let ownership t name = if Hashtbl.mem t.frozen name then Frozen else Owned

(* Write barrier over frozen buffers.  Off by default (the readonly
   aliasing contract is enforced statically by the effect summary); the
   sanitizer flips it on so that any write reaching a frozen array through
   the interpreter traps immediately instead of corrupting every
   subsequent environment in the process. *)
let frozen_guard = Atomic.make false
let set_frozen_guard b = Atomic.set frozen_guard b
let frozen_guard_enabled () = Atomic.get frozen_guard

exception Frozen_write of string * int

let check_frozen t name idx =
  if Atomic.get frozen_guard && Hashtbl.mem t.frozen name then
    raise (Frozen_write (name, idx))

(* SplitMix64-style hash, reduced to OCaml's 63-bit ints; good enough to
   decorrelate (seed, name, index) triples.  The (seed, name) prefix is
   independent of the index, so bulk initialization hashes the name once
   per array instead of once per element. *)
let hash_name seed name =
  let h = ref (seed * 0x9E3779B1) in
  String.iter (fun c -> h := ((!h lxor Char.code c) * 0x01000193) land max_int) name;
  !h

let hash_idx h0 idx =
  let h = ref (h0 lxor idx) in
  h := (!h * 0xff51afd7) land max_int;
  h := !h lxor (!h lsr 23);
  h := (!h * 0xc4ceb9fe) land max_int;
  h := !h lxor (!h lsr 29);
  !h land max_int

(* Data floats in [0.5, 1.5): safe for division and stable under long
   product reductions; integer data arrays get small positive ints. *)
let float_of_hash h = 0.5 +. (float_of_int (h mod 10000) /. 10000.0)

(* A deterministic permutation of [0, n), extended periodically when the
   array extent exceeds n.  Conflict-freedom inside any vector window is what
   the forced-vectorization experiments assume of index arrays. *)
let permutation seed name n =
  let h0 = hash_name seed name in
  let p = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = hash_idx h0 i mod (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let fill_floats h0 a len =
  for i = 0 to len - 1 do
    Array.unsafe_set a i (float_of_hash (hash_idx h0 i))
  done

let fill_ints h0 a len =
  for i = 0 to len - 1 do
    Array.unsafe_set a i (1 + (hash_idx h0 i mod 4))
  done

(* Master copies of freshly initialized buffers, memoized per
   (seed, kind, name, len, n).  TSVC kernels overwhelmingly share array
   names and extents, so a registry-wide dataset build hashes each
   distinct buffer once and every subsequent environment starts from a
   memcpy of its master.  Masters are private to this table — callers
   only ever receive copies or blits.  The mutex makes the table safe
   under the domain pool; the cap bounds growth if a sweep runs many
   distinct (seed, n) combinations. *)
type master = M_f of float array | M_i of int array

let kind_label = function 0 -> "f" | 1 -> "i" | _ -> "idx"

let master_key_string (seed, kind, name, len, n) =
  Printf.sprintf "%s:%s:seed=%d:len=%d:n=%d" (kind_label kind) name seed len n

(* The printable key is materialized once at memoization time: the
   sanitizer folds over the table after every measured run, and
   re-rendering every key per fold would dominate its overhead. *)
let memo : (int * int * string * int * int, string * master) Hashtbl.t =
  Hashtbl.create 64

let memo_lock = Mutex.create ()
let memo_cap = 512

let master_for key make =
  Mutex.lock memo_lock;
  let m =
    match Hashtbl.find_opt memo key with
    | Some (_, m) -> m
    | None ->
        if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
        let m = make () in
        Hashtbl.replace memo key (master_key_string key, m);
        m
  in
  Mutex.unlock memo_lock;
  m

let float_master seed name len =
  match
    master_for (seed, 0, name, len, 0) (fun () ->
        let a = Array.make len 0.0 in
        fill_floats (hash_name seed name) a len;
        M_f a)
  with
  | M_f a -> a
  | M_i _ -> assert false

let int_master seed name len =
  match
    master_for (seed, 1, name, len, 0) (fun () ->
        let a = Array.make len 0 in
        fill_ints (hash_name seed name) a len;
        M_i a)
  with
  | M_i a -> a
  | M_f _ -> assert false

let idx_master seed name len n =
  match
    master_for (seed, 2, name, len, n) (fun () ->
        let perm = permutation seed name n in
        M_i (Array.init len (fun i -> perm.(i mod n))))
  with
  | M_i a -> a
  | M_f _ -> assert false

(* Fold over the memoized masters in a deterministic (key-sorted) order.
   The store views share structure with the masters themselves: callers
   must treat them as strictly read-only.  This is the sanitizer's window
   into the shared state it shadows. *)
let fold_masters f init =
  Mutex.lock memo_lock;
  let items = Hashtbl.fold (fun _ km acc -> km :: acc) memo [] in
  Mutex.unlock memo_lock;
  let items = List.sort (fun (a, _) (b, _) -> String.compare a b) items in
  List.fold_left
    (fun acc (key, m) ->
      let st = match m with M_f a -> F_arr a | M_i a -> I_arr a in
      f key st acc)
    init items

(* Drop every memoized master.  Tests use this to recover from a
   deliberately poisoned table; subsequent [create] calls re-derive
   masters from the pure (seed, name, index) initialization. *)
let clear_masters () =
  Mutex.lock memo_lock;
  Hashtbl.reset memo;
  Mutex.unlock memo_lock

(* Deliberately corrupt one memoized master in place — the fault-injection
   hook behind the [sanitize.poison] site.  This is exactly the failure
   mode the sanitizer exists to catch: a single flipped word in a shared
   master silently skews every environment created afterwards.  Prefers
   float data masters (then int data, then index permutations, whose
   corruption could additionally send gathers out of bounds); returns the
   printable key of the poisoned master, or [None] if the table is empty. *)
let poison_master () =
  Mutex.lock memo_lock;
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) memo [] in
  let kind_of (_, kind, _, _, _) = kind in
  let keys =
    List.sort
      (fun a b ->
        match compare (kind_of a) (kind_of b) with
        | 0 -> compare a b
        | c -> c)
      keys
  in
  let poisoned =
    match keys with
    | [] -> None
    | key :: _ -> (
        match Hashtbl.find_opt memo key with
        | Some (s, M_f a) when Array.length a > 0 ->
            a.(0) <- a.(0) +. 1.0;
            Some s
        | Some (s, M_i a) when Array.length a > 0 ->
            a.(0) <- a.(0) + 1;
            Some s
        | _ -> None)
  in
  Mutex.unlock memo_lock;
  poisoned

(* [readonly name = true] promises the caller will never write [name]
   through this environment; the array then aliases the shared master
   instead of copying it.  [Measure.execute] derives the predicate from
   the kernel's static store set, which is exactly what every execution
   backend writes through. *)
let create ?(seed = 42) ?(readonly = fun _ -> false) ~n (k : Kernel.t) =
  if n < 4 then invalid_arg "Env.create: n must be at least 4";
  let n2 = Kernel.isqrt n in
  let arrays = Hashtbl.create 8 in
  let frozen = Hashtbl.create 4 in
  List.iter
    (fun (d : Kernel.array_decl) ->
      let len = max 1 (Kernel.extent_elems ~n d.arr_extent) in
      let share = readonly d.arr_name in
      if share then Hashtbl.replace frozen d.arr_name ();
      let of_master a = if share then a else Array.copy a in
      let store =
        match (d.arr_role, d.arr_ty) with
        | Kernel.Idx, _ -> I_arr (of_master (idx_master seed d.arr_name len n))
        | Kernel.Data, (Types.F32 | Types.F64) ->
            F_arr (of_master (float_master seed d.arr_name len))
        | Kernel.Data, (Types.I32 | Types.I64) ->
            I_arr (of_master (int_master seed d.arr_name len))
      in
      Hashtbl.replace arrays d.arr_name store)
    k.arrays;
  let params = Hashtbl.create 4 in
  List.iteri
    (fun i p ->
      (* Parameter values: small, positive, deterministic, distinct. *)
      Hashtbl.replace params p (1.0 +. (0.5 *. float_of_int (i + 1))))
    k.params;
  { n; n2; arrays; params; frozen; on_access = None }

(* Re-initialize in place for a fresh run of [k]: contents identical to
   [create ?seed ~n:t.n k], but existing buffers of the right kind and
   length are refilled rather than reallocated.  Median-of-k repeat
   measurements call this between repeats so the working set is allocated
   once per sample instead of once per repeat. *)
let reset ?(seed = 42) t (k : Kernel.t) =
  let keep = Hashtbl.create 8 in
  List.iter
    (fun (d : Kernel.array_decl) ->
      Hashtbl.replace keep d.arr_name ();
      let len = max 1 (Kernel.extent_elems ~n:t.n d.arr_extent) in
      let fresh () =
        match (d.arr_role, d.arr_ty) with
        | Kernel.Idx, _ ->
            I_arr (Array.copy (idx_master seed d.arr_name len t.n))
        | Kernel.Data, (Types.F32 | Types.F64) ->
            F_arr (Array.copy (float_master seed d.arr_name len))
        | Kernel.Data, (Types.I32 | Types.I64) ->
            I_arr (Array.copy (int_master seed d.arr_name len))
      in
      (* An array that aliases its master was never written (the [create]
         contract), so the refill would be an identity blit: skip it. *)
      match (Hashtbl.find_opt t.arrays d.arr_name, d.arr_role, d.arr_ty) with
      | Some (F_arr a), Kernel.Data, (Types.F32 | Types.F64)
        when Array.length a = len ->
          let m = float_master seed d.arr_name len in
          if a != m then Array.blit m 0 a 0 len
      | Some (I_arr a), Kernel.Data, (Types.I32 | Types.I64)
        when Array.length a = len ->
          let m = int_master seed d.arr_name len in
          if a != m then Array.blit m 0 a 0 len
      | Some (I_arr a), Kernel.Idx, _ when Array.length a = len ->
          let m = idx_master seed d.arr_name len t.n in
          if a != m then Array.blit m 0 a 0 len
      | _ ->
          (* A fresh buffer is a private copy, whatever the name's previous
             ownership was. *)
          Hashtbl.remove t.frozen d.arr_name;
          Hashtbl.replace t.arrays d.arr_name (fresh ()))
    k.arrays;
  (* Drop arrays a previous kernel left behind so [snapshot] stays exact. *)
  let stale =
    Hashtbl.fold
      (fun name _ acc -> if Hashtbl.mem keep name then acc else name :: acc)
      t.arrays []
  in
  List.iter
    (fun name ->
      Hashtbl.remove t.arrays name;
      Hashtbl.remove t.frozen name)
    stale;
  Hashtbl.reset t.params;
  List.iteri
    (fun i p -> Hashtbl.replace t.params p (1.0 +. (0.5 *. float_of_int (i + 1))))
    k.params

let set_param t name v = Hashtbl.replace t.params name v

let set_trace t f = t.on_access <- Some f
let clear_trace t = t.on_access <- None

let trace t name idx write =
  match t.on_access with Some f -> f name idx write | None -> ()

let param t name =
  match Hashtbl.find_opt t.params name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Env.param: unbound parameter %s" name)

let store t name =
  match Hashtbl.find_opt t.arrays name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Env.store: unknown array %s" name)

let length t name =
  match store t name with F_arr a -> Array.length a | I_arr a -> Array.length a

exception Out_of_bounds of string * int

let read_float t name idx =
  trace t name idx false;
  match store t name with
  | F_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      a.(idx)
  | I_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      float_of_int a.(idx)

let read_int t name idx =
  trace t name idx false;
  match store t name with
  | I_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      a.(idx)
  | F_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      int_of_float a.(idx)

let write_float t name idx v =
  check_frozen t name idx;
  trace t name idx true;
  match store t name with
  | F_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      a.(idx) <- v
  | I_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      a.(idx) <- int_of_float v

let write_int t name idx v =
  check_frozen t name idx;
  trace t name idx true;
  match store t name with
  | I_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      a.(idx) <- v
  | F_arr a ->
      if idx < 0 || idx >= Array.length a then raise (Out_of_bounds (name, idx));
      a.(idx) <- float_of_int v

(* Flat snapshot of every array as floats, for comparing two executions. *)
let snapshot t =
  Hashtbl.fold
    (fun name st acc ->
      let data =
        match st with
        | F_arr a -> Array.copy a
        | I_arr a -> Array.map float_of_int a
      in
      (name, data) :: acc)
    t.arrays []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
