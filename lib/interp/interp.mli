(** Reference scalar interpreter for kernels. *)

type value = V_int of int | V_float of float | V_bool of bool

val to_float : value -> float
val to_int : value -> int
val to_bool : value -> bool

val float_bin : Vir.Op.binop -> float -> float -> float
val int_bin : Vir.Op.binop -> int -> int -> int
val float_una : Vir.Op.unop -> float -> float
val int_una : Vir.Op.unop -> int -> int
val float_cmp : Vir.Op.cmpop -> float -> float -> bool

(** Fold one value into a reduction accumulator / its neutral element. *)
val red_combine : Vir.Op.redop -> float -> float -> float

val red_neutral : Vir.Op.redop -> float

(** Evaluate a subscript dimension under loop-variable bindings. *)
val eval_dim : Env.t -> ndims:int -> (string * int) list -> Vir.Instr.dim -> int

(** Row-major flat element index of an affine access. *)
val flat_index : Env.t -> (string * int) list -> Vir.Instr.dim list -> int

val eval_operand :
  Env.t -> (string * int) list -> value array -> Vir.Instr.operand -> value

(** Execute the body once for the given bindings; [accs] holds the reduction
    accumulators (parallel to [k.reductions]) and is updated in place.
    [observe] is called with (position, value) for every register defined —
    the hook the abstract-interpretation soundness tests attach to. *)
val exec_iteration :
  ?observe:(int -> value -> unit) ->
  Env.t ->
  Vir.Kernel.t ->
  idx:(string * int) list ->
  accs:float array ->
  unit

type result = { env : Env.t; reductions : (string * float) list }

(** Run the whole nest in an existing environment; returns reduction values. *)
val run_in :
  ?observe:(int -> value -> unit) -> Env.t -> Vir.Kernel.t -> (string * float) list

(** Allocate a fresh environment and run. *)
val run : ?seed:int -> ?observe:(int -> value -> unit) -> n:int -> Vir.Kernel.t -> result
