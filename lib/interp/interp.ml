(* Reference (scalar) interpreter.  Executes kernels exactly as written, one
   innermost iteration at a time; the vectorized executor in [Vvect] reuses
   [exec_iteration] for its scalar epilogue and must produce the same final
   state, which the property tests check. *)

open Vir

type value = V_int of int | V_float of float | V_bool of bool

let to_float = function
  | V_float f -> f
  | V_int i -> float_of_int i
  | V_bool _ -> invalid_arg "Interp: mask used as a number"

let to_int = function
  | V_int i -> i
  | V_float f -> int_of_float f
  | V_bool _ -> invalid_arg "Interp: mask used as a number"

let to_bool = function
  | V_bool b -> b
  | V_int _ | V_float _ -> invalid_arg "Interp: number used as a mask"

(* --- operator semantics ------------------------------------------------ *)

let float_bin (op : Op.binop) a b =
  match op with
  | Op.Add -> a +. b
  | Op.Sub -> a -. b
  | Op.Mul -> a *. b
  | Op.Div -> a /. b
  | Op.Min -> Float.min a b
  | Op.Max -> Float.max a b
  | Op.Rem | Op.And | Op.Or | Op.Xor | Op.Shl | Op.Shr ->
      invalid_arg "Interp: integer-only binop on floats"

let int_bin (op : Op.binop) a b =
  match op with
  | Op.Add -> a + b
  | Op.Sub -> a - b
  | Op.Mul -> a * b
  | Op.Div -> if b = 0 then invalid_arg "Interp: division by zero" else a / b
  | Op.Rem -> if b = 0 then invalid_arg "Interp: rem by zero" else a mod b
  | Op.Min -> min a b
  | Op.Max -> max a b
  | Op.And -> a land b
  | Op.Or -> a lor b
  | Op.Xor -> a lxor b
  | Op.Shl -> a lsl (b land 63)
  | Op.Shr -> a asr (b land 63)

let float_una (op : Op.unop) a =
  match op with
  | Op.Neg -> -.a
  | Op.Abs -> abs_float a
  | Op.Sqrt -> sqrt a
  | Op.Not -> invalid_arg "Interp: not on float"

let int_una (op : Op.unop) a =
  match op with
  | Op.Neg -> -a
  | Op.Abs -> abs a
  | Op.Not -> lnot a
  | Op.Sqrt -> invalid_arg "Interp: sqrt on int"

let float_cmp (op : Op.cmpop) a b =
  match op with
  | Op.Eq -> a = b
  | Op.Ne -> a <> b
  | Op.Lt -> a < b
  | Op.Le -> a <= b
  | Op.Gt -> a > b
  | Op.Ge -> a >= b

let red_combine (op : Op.redop) acc v =
  match op with
  | Op.Rsum -> acc +. v
  | Op.Rprod -> acc *. v
  | Op.Rmin -> Float.min acc v
  | Op.Rmax -> Float.max acc v

let red_neutral (op : Op.redop) =
  match op with
  | Op.Rsum -> 0.0
  | Op.Rprod -> 1.0
  | Op.Rmin -> infinity
  | Op.Rmax -> neg_infinity

(* --- addressing --------------------------------------------------------- *)

(* [rel_n] in a subscript means "+ (traversal bound - 1)": n for 1-d arrays,
   n2 per dimension of 2-d arrays. *)
let eval_dim env ~ndims idx (d : Instr.dim) =
  let bound = if ndims >= 2 then env.Env.n2 else env.Env.n in
  let base = if d.rel_n then bound - 1 else 0 in
  let vars =
    List.fold_left
      (fun acc (v, c) ->
        match List.assoc_opt v idx with
        | Some value -> acc + (c * value)
        | None -> invalid_arg (Printf.sprintf "Interp: unbound loop var %s" v))
      0 d.terms
  in
  let pars =
    List.fold_left
      (fun acc (p, c) -> acc + (c * int_of_float (Env.param env p)))
      0 d.pterms
  in
  base + vars + pars + d.off

let flat_index env idx (dims : Instr.dim list) =
  match dims with
  | [ d ] -> eval_dim env ~ndims:1 idx d
  | [ d0; d1 ] ->
      (eval_dim env ~ndims:2 idx d0 * env.Env.n2) + eval_dim env ~ndims:2 idx d1
  | _ -> invalid_arg "Interp: unsupported dimensionality"

let resolve_addr env idx regs = function
  | Instr.Affine { arr; dims } -> (arr, flat_index env idx dims)
  | Instr.Indirect { arr; idx = op } ->
      let v =
        match op with
        | Instr.Reg r -> to_int regs.(r)
        | Instr.Index v -> (
            match List.assoc_opt v idx with
            | Some value -> value
            | None -> invalid_arg "Interp: unbound loop var in indirect index")
        | Instr.Param p -> int_of_float (Env.param env p)
        | Instr.Imm_int i -> i
        | Instr.Imm_float _ -> invalid_arg "Interp: float indirect index"
      in
      (arr, v)

(* --- execution ---------------------------------------------------------- *)

let eval_operand env idx regs = function
  | Instr.Reg r -> regs.(r)
  | Instr.Index v -> (
      match List.assoc_opt v idx with
      | Some value -> V_int value
      | None -> invalid_arg (Printf.sprintf "Interp: unbound loop var %s" v))
  | Instr.Param p -> V_float (Env.param env p)
  | Instr.Imm_int i -> V_int i
  | Instr.Imm_float f -> V_float f

(* Execute the body once for the given loop-variable bindings, updating
   memory and the reduction accumulators in place.  [observe] sees every
   register result as it is defined (position, value) — the soundness
   property tests hang abstract-interpretation containment checks off it. *)
let exec_iteration ?observe env (k : Kernel.t) ~idx ~accs =
  let regs = Array.make (List.length k.body) (V_int 0) in
  List.iteri
    (fun pos instr ->
      let ev op = eval_operand env idx regs op in
      let result =
        match instr with
        | Instr.Bin { ty; op; a; b } ->
            if Types.is_float ty then
              V_float (float_bin op (to_float (ev a)) (to_float (ev b)))
            else V_int (int_bin op (to_int (ev a)) (to_int (ev b)))
        | Instr.Una { ty; op; a } ->
            if Types.is_float ty then V_float (float_una op (to_float (ev a)))
            else V_int (int_una op (to_int (ev a)))
        | Instr.Fma { a; b; c; _ } ->
            V_float ((to_float (ev a) *. to_float (ev b)) +. to_float (ev c))
        | Instr.Cmp { ty; op; a; b } ->
            if Types.is_float ty then
              V_bool (float_cmp op (to_float (ev a)) (to_float (ev b)))
            else
              V_bool
                (float_cmp op
                   (float_of_int (to_int (ev a)))
                   (float_of_int (to_int (ev b))))
        | Instr.Select { ty; cond; if_true; if_false } ->
            let arm = if to_bool (ev cond) then if_true else if_false in
            if Types.is_float ty then V_float (to_float (ev arm))
            else V_int (to_int (ev arm))
        | Instr.Load { ty; addr } ->
            let arr, i = resolve_addr env idx regs addr in
            if Types.is_float ty then V_float (Env.read_float env arr i)
            else V_int (Env.read_int env arr i)
        | Instr.Store { ty; addr; src } ->
            let arr, i = resolve_addr env idx regs addr in
            (if Types.is_float ty then Env.write_float env arr i (to_float (ev src))
             else Env.write_int env arr i (to_int (ev src)));
            V_int 0
        | Instr.Cast { dst_ty; a; _ } ->
            if Types.is_float dst_ty then V_float (to_float (ev a))
            else V_int (to_int (ev a))
      in
      regs.(pos) <- result;
      match observe with Some f -> f pos result | None -> ())
    k.body;
  List.iteri
    (fun j (r : Kernel.reduction) ->
      accs.(j) <-
        red_combine r.red_op accs.(j)
          (to_float (eval_operand env idx regs r.red_src)))
    k.reductions

type result = { env : Env.t; reductions : (string * float) list }

(* Iterate a loop nest, calling [f] with complete bindings at each innermost
   iteration. *)
let rec drive env loops bound_idx f =
  match loops with
  | [] -> f bound_idx
  | (l : Kernel.loop) :: rest ->
      let bound = Kernel.trip_bound ~n:env.Env.n l.trip in
      let v = ref l.start in
      while !v < bound do
        drive env rest ((l.var, !v) :: bound_idx) f;
        v := !v + l.step
      done

let run_in ?observe env (k : Kernel.t) =
  let accs = Array.of_list (List.map (fun r -> r.Kernel.red_init) k.reductions) in
  drive env k.loops [] (fun idx -> exec_iteration ?observe env k ~idx ~accs);
  List.mapi (fun j (r : Kernel.reduction) -> (r.red_name, accs.(j))) k.reductions

let run ?seed ?observe ~n (k : Kernel.t) =
  let env = Env.create ?seed ~n k in
  let reductions = run_in ?observe env k in
  { env; reductions }
