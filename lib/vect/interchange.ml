(* Loop interchange for 2-level perfect nests.

   The enabling transform of the loop-interchange TSVC category: a kernel
   whose innermost direction carries a recurrence (s232-style) can become
   vectorizable by running the nest the other way — usually trading the
   dependence for column-strided accesses, which is exactly the kind of
   trade a cost model must price.

   Legality is the textbook direction-vector condition: interchange is
   illegal iff some dependence has direction (<, >) — carried forward by
   the outer loop and backward by the inner one — because swapping would
   reverse its execution order.  Direction vectors come from the
   nest-wide dependence graph ([Vdeps.Depgraph] via [Vdeps.Legality]),
   which decides coupled subscripts through the Banerjee-bound direction
   tests; anything whose direction stays unknown is a refusal. *)

open Vir

type error =
  | Not_two_level
  | Imperfect of string  (* why the direction vectors could not be computed *)
  | Illegal_direction of string  (* array with a (<, >) dependence *)

let error_to_string = function
  | Not_two_level -> "kernel is not a two-level nest"
  | Imperfect why -> Printf.sprintf "cannot analyze: %s" why
  | Illegal_direction arr ->
      Printf.sprintf "dependence on %s has direction (<, >)" arr

(* Exact distance vectors [(array, d_outer, d_inner)] of every loop-carried
   dependence, from the nest-wide graph; an error when any edge lacks an
   exact vector (unknown direction, indirect access, symbolic offsets). *)
let distance_vectors (k : Kernel.t) =
  if List.length k.loops <> 2 then Error Not_two_level
  else
    let g = Vdeps.Depgraph.build k in
    if Vdeps.Depgraph.unknown_carried g <> [] then
      Error (Imperfect "dependence direction unknown")
    else
      match Vdeps.Depgraph.distance_vectors g with
      | None -> Error (Imperfect "no exact distance vector")
      | Some vecs ->
          Ok
            (List.filter_map
               (function
                 | arr, [ dout; din ] -> Some (arr, dout, din)
                 | _ -> None)
               vecs)

let legal (k : Kernel.t) =
  match Vdeps.Legality.interchange_verdict k with
  | Vdeps.Legality.Ix_legal -> Ok ()
  | Vdeps.Legality.Ix_illegal arr -> Error (Illegal_direction arr)
  | Vdeps.Legality.Ix_inapplicable why ->
      if List.length k.loops <> 2 then Error Not_two_level
      else Error (Imperfect why)

let apply (k : Kernel.t) =
  match legal k with
  | Error e -> Error e
  | Ok () -> (
      match k.loops with
      | [ outer; inner ] ->
          Ok
            { k with
              Kernel.name = k.Kernel.name ^ ".interchanged";
              loops = [ inner; outer ] }
      | _ -> Error Not_two_level)

(* The enabling-transform pipeline: if the nest is not vectorizable as
   written but is after interchange, return the interchanged kernel. *)
let enable_vectorization (k : Kernel.t) =
  if Vdeps.Dependence.vectorizable k then None
  else
    match apply k with
    | Error _ -> None
    | Ok k' -> if Vdeps.Dependence.vectorizable k' then Some k' else None
