(** Loop-level vectorization: widen the innermost loop by VF, preserving
    statement order (LLVM's loop vectorizer with interleaving disabled). *)

type error =
  | Not_legal of Vdeps.Dependence.vf_limit
  | Invariant_store of int
  | Bad_vf of int

val error_to_string : error -> string

(** Vectorize a kernel at the given factor; [ic] interleaves that many
    sub-blocks (independent accumulators) per iteration, checked for
    legality at the full [vf*ic] span.  Fails when the legality oracle
    forbids the width or the body stores to a loop-invariant address.
    [force] skips the oracle (validator cross-checks only). *)
val vectorize :
  vf:int -> ?ic:int -> ?force:bool -> Vir.Kernel.t ->
  (Vinstr.vkernel, error) result
