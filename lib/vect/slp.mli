(** Superword-level parallelism: pack the body as if unrolled VF times,
    seeding from contiguous stores and reduction-idiom accumulators;
    non-contiguous accesses are scalarized and joined through explicit
    pack/extract instructions.  [force] skips the legality oracle
    (validator cross-checks only). *)

type error = Not_legal | No_seed | Has_reductions | Bad_vf of int

val error_to_string : error -> string

val vectorize :
  vf:int -> ?force:bool -> Vir.Kernel.t -> (Vinstr.vkernel, error) result
