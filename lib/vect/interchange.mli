(** Loop interchange for 2-level perfect nests, with direction-vector
    legality from the nest-wide dependence graph (refuses anything whose
    direction vectors stay unknown). *)

type error =
  | Not_two_level
  | Imperfect of string
  | Illegal_direction of string

val error_to_string : error -> string

(** Exact distance vectors [(array, d_outer, d_inner)] of every
    loop-carried dependence, from the nest-wide graph. *)
val distance_vectors :
  Vir.Kernel.t -> ((string * int * int) list, error) result

val legal : Vir.Kernel.t -> (unit, error) result
val apply : Vir.Kernel.t -> (Vir.Kernel.t, error) result

(** When the nest only vectorizes after interchange, return the interchanged
    kernel. *)
val enable_vectorization : Vir.Kernel.t -> Vir.Kernel.t option
