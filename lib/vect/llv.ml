(* Loop-level vectorization (LLV): strip-mine the innermost loop by VF and
   widen every body instruction to VF lanes, preserving statement order.
   Mirrors LLVM's loop vectorizer with unrolling/interleaving disabled, the
   configuration the paper's ARM experiments use.

   Legality comes from [Vdeps.Dependence]; the transformation itself then
   only needs to pick the wide form of each access:
     stride  1  -> one wide load/store
     stride -1  -> wide access + lane reversal
     stride  s  -> interleaved/strided access
     column walk-> row-strided access
     indirect   -> gather / scatter
   Loop-invariant scalars are broadcast; uses of the induction variable
   become an iota vector; reductions get per-lane accumulators combined
   horizontally after the loop. *)

open Vir

type error =
  | Not_legal of Vdeps.Dependence.vf_limit
  | Invariant_store of int  (* body position storing to a fixed location *)
  | Bad_vf of int

let error_to_string = function
  | Not_legal (Vdeps.Dependence.Max_vf m) ->
      Printf.sprintf "loop-carried dependence limits VF to %d" m
  | Not_legal Vdeps.Dependence.Unlimited -> "unexpected legality failure"
  | Invariant_store p ->
      Printf.sprintf "instruction %d stores to a loop-invariant address" p
  | Bad_vf vf -> Printf.sprintf "invalid vectorization factor %d" vf

type width = Wvec | Wscalar

let vectorize ~vf ?(ic = 1) ?(force = false) (k : Kernel.t) :
    (Vinstr.vkernel, error) result =
  if vf < 2 || ic < 1 then Error (Bad_vf vf)
  else if (not force) && not (Vdeps.Legality.llv_ok k ~vf:(vf * ic)) then
    (* Interleaving groups statements across ic sub-blocks, so legality is
       checked at the full vf*ic span.  [force] skips the oracle so the
       validator cross-check can measure its precision and recall. *)
    Error (Not_legal (Vdeps.Dependence.vf_limit k))
  else begin
    let inner = Kernel.innermost k in
    let vbody = ref [] in
    let count = ref 0 in
    let emit vi =
      vbody := vi :: !vbody;
      let p = !count in
      incr count;
      p
    in
    let vmap = Array.make (List.length k.body) (-1, Wscalar) in
    let iota = ref None in
    let get_iota () =
      match !iota with
      | Some p -> p
      | None ->
          let p = emit (Vinstr.Viota { ty = Types.I64 }) in
          iota := Some p;
          p
    in
    let convert (op : Instr.operand) : Vinstr.voperand =
      match op with
      | Instr.Reg r -> (
          match vmap.(r) with
          | p, Wvec -> Vinstr.V p
          | p, Wscalar -> Vinstr.Splat (Instr.Reg p))
      | Instr.Index v when String.equal v inner.var -> Vinstr.V (get_iota ())
      | Instr.Index _ | Instr.Param _ | Instr.Imm_int _ | Instr.Imm_float _ ->
          Vinstr.Splat op
    in
    let classify addr =
      match Kernel.access_stride k addr with
      | Kernel.Sconst 0 -> None (* loop-invariant location *)
      | Kernel.Sconst 1 -> Some Vinstr.Contig
      | Kernel.Sconst -1 -> Some Vinstr.Rev
      | Kernel.Sconst s -> Some (Vinstr.Strided s)
      | Kernel.Srow _ -> Some Vinstr.Row
      | Kernel.Sindirect -> invalid_arg "classify: indirect"
    in
    let failure = ref None in
    List.iteri
      (fun pos instr ->
        if !failure = None then
          let widen =
            match instr with
            | Instr.Bin { ty; op; a; b } ->
                Some (Vinstr.Vbin { ty; op; a = convert a; b = convert b })
            | Instr.Una { ty; op; a } -> Some (Vinstr.Vuna { ty; op; a = convert a })
            | Instr.Fma { ty; a; b; c } ->
                Some (Vinstr.Vfma { ty; a = convert a; b = convert b; c = convert c })
            | Instr.Cmp { ty; op; a; b } ->
                Some (Vinstr.Vcmp { ty; op; a = convert a; b = convert b })
            | Instr.Select { ty; cond; if_true; if_false } ->
                Some
                  (Vinstr.Vselect
                     { ty; cond = convert cond; if_true = convert if_true;
                       if_false = convert if_false })
            | Instr.Cast { src_ty; dst_ty; a } ->
                Some (Vinstr.Vcast { src_ty; dst_ty; a = convert a })
            | Instr.Load { ty; addr = Instr.Indirect { arr; idx } } ->
                Some (Vinstr.Vgather { ty; arr; idx = convert idx })
            | Instr.Load { ty; addr = Instr.Affine { arr; dims } as addr } -> (
                match classify addr with
                | Some access -> Some (Vinstr.Vload { ty; arr; dims; access })
                | None ->
                    (* Invariant load: keep it scalar, splat at the uses. *)
                    let p =
                      emit (Vinstr.Sc { copy = 0; instr })
                    in
                    vmap.(pos) <- (p, Wscalar);
                    None)
            | Instr.Store { ty; addr = Instr.Indirect { arr; idx }; src } ->
                Some
                  (Vinstr.Vscatter { ty; arr; idx = convert idx; src = convert src })
            | Instr.Store { ty; addr = Instr.Affine { arr; dims } as addr; src }
              -> (
                match classify addr with
                | Some access ->
                    Some (Vinstr.Vstore { ty; arr; dims; access; src = convert src })
                | None ->
                    failure := Some (Invariant_store pos);
                    None)
          in
          match widen with
          | Some vi ->
              let p = emit vi in
              vmap.(pos) <- (p, Wvec)
          | None -> ())
      k.body;
    match !failure with
    | Some e -> Error e
    | None ->
        let vreductions =
          List.map
            (fun (r : Kernel.reduction) ->
              {
                Vinstr.vr_name = r.red_name;
                vr_ty = r.red_ty;
                vr_op = r.red_op;
                vr_src = convert r.red_src;
                vr_init = r.red_init;
              })
            k.reductions
        in
        Ok
          {
            Vinstr.scalar = k;
            vf;
            ic;
            vbody = List.rev !vbody;
            vreductions;
            source = Vinstr.Src_llv;
          }
  end
