(* Superword-level parallelism (SLP): vectorize the innermost loop body as if
   it had been unrolled VF times, packing isomorphic instruction groups that
   root at contiguous stores.  Non-contiguous memory accesses are scalarized
   (VF scalar copies) and joined to the packed world through explicit
   [Vpack]/[Vextract] instructions, which is how LLVM's SLP pass costs them.
   This is the configuration of the paper's x86 study ("SLP vectorization
   applied after loop unrolling").

   Reduction loops are admitted under the explicit idiom tag (every redop
   in the IR is order-insensitive — [Vdeps.Idiom.reductions_vectorizable]):
   each accumulator's source is demanded as a pack seed and the horizontal
   combine is emitted as a [vreduction], exactly the shape LLV produces.

   Emission walks the body strictly in original statement order, so the
   legality criterion shared with LLV applies unchanged. *)

open Vir

type error = Not_legal | No_seed | Has_reductions | Bad_vf of int

let error_to_string = function
  | Not_legal -> "loop-carried dependence forbids packing"
  | No_seed -> "no contiguous store or reduction to seed a pack tree"
  | Has_reductions -> "reduction accumulator is not an order-insensitive idiom"
  | Bad_vf vf -> Printf.sprintf "invalid pack width %d" vf

type mode = Packed | Scalarized | Invariant

let vectorize ~vf ?(force = false) (k : Kernel.t) :
    (Vinstr.vkernel, error) result =
  if vf < 2 then Error (Bad_vf vf)
  else if not (Vdeps.Idiom.reductions_vectorizable k) then Error Has_reductions
  else if (not force) && not (Vdeps.Legality.slp_ok k ~vf) then Error Not_legal
  else begin
    let body = Array.of_list k.body in
    let nbody = Array.length body in
    let inner = Kernel.innermost k in
    (* --- demand analysis -------------------------------------------- *)
    let dv = Array.make nbody false (* wanted as a vector *) in
    let ds = Array.make nbody false (* wanted as per-copy scalars *) in
    let mode = Array.make nbody Scalarized in
    let stride pos =
      match body.(pos) with
      | Instr.Load { addr; _ } | Instr.Store { addr; _ } ->
          Some (Kernel.access_stride k addr)
      | _ -> None
    in
    let any_packed_store = ref false in
    (* Seed demands from the stores. *)
    Array.iteri
      (fun pos instr ->
        match instr with
        | Instr.Store { src; _ } -> (
            match stride pos with
            | Some (Kernel.Sconst 1) ->
                mode.(pos) <- Packed;
                any_packed_store := true;
                (match src with Instr.Reg r -> dv.(r) <- true | _ -> ())
            | _ ->
                mode.(pos) <- Scalarized;
                List.iter
                  (function Instr.Reg r -> ds.(r) <- true | _ -> ())
                  (Instr.operands instr))
        | _ -> ())
      body;
    (* Reduction idiom: each accumulator's source is a pack seed too. *)
    List.iter
      (fun (r : Kernel.reduction) ->
        match r.red_src with Instr.Reg p -> dv.(p) <- true | _ -> ())
      k.reductions;
    if (not !any_packed_store) && k.reductions = [] then Error No_seed
    else begin
      (* Backwards propagation decides each position's mode. *)
      for pos = nbody - 1 downto 0 do
        let instr = body.(pos) in
        if dv.(pos) then begin
          match instr with
          | Instr.Bin _ | Instr.Una _ | Instr.Fma _ | Instr.Cmp _
          | Instr.Select _ | Instr.Cast _ ->
              mode.(pos) <- Packed;
              List.iter
                (function Instr.Reg r -> dv.(r) <- true | _ -> ())
                (Instr.operands instr)
          | Instr.Load _ -> (
              match stride pos with
              | Some (Kernel.Sconst 1) -> mode.(pos) <- Packed
              | Some (Kernel.Sconst 0) -> mode.(pos) <- Invariant
              | _ ->
                  (* Reversed/strided/column/gather loads: VF scalar loads
                     packed into a vector. *)
                  mode.(pos) <- Scalarized;
                  List.iter
                    (function Instr.Reg r -> ds.(r) <- true | _ -> ())
                    (Instr.operands instr))
          | Instr.Store _ -> ()
        end;
        if ds.(pos) then begin
          (match instr with
          | Instr.Store _ -> ()
          | _ when dv.(pos) && mode.(pos) = Packed ->
              (* Vector consumers keep it packed; scalar consumers will
                 extract lanes. *)
              ()
          | _ -> mode.(pos) <- if mode.(pos) = Packed then Packed else Scalarized);
          if mode.(pos) = Scalarized then
            List.iter
              (function Instr.Reg r -> ds.(r) <- true | _ -> ())
              (Instr.operands instr)
        end
      done;
      (* --- emission ---------------------------------------------------- *)
      let vbody = ref [] in
      let count = ref 0 in
      let emit vi =
        vbody := vi :: !vbody;
        let p = !count in
        incr count;
        p
      in
      let vec_pos = Array.make nbody (-1) in
      let sca_pos = Array.make_matrix vf nbody (-1) in
      let ext_pos = Array.make_matrix vf nbody (-1) in
      let iota = ref None in
      let get_iota () =
        match !iota with
        | Some p -> p
        | None ->
            let p = emit (Vinstr.Viota { ty = Types.I64 }) in
            iota := Some p;
            p
      in
      (* Scalar operand for copy [c]; emits a lane extract when the producer
         is packed. *)
      let scalar_operand c (op : Instr.operand) : Instr.operand =
        match op with
        | Instr.Reg r -> (
            match mode.(r) with
            | Scalarized -> Instr.Reg sca_pos.(c).(r)
            | Invariant -> Instr.Reg sca_pos.(0).(r)
            | Packed ->
                if ext_pos.(c).(r) < 0 then begin
                  let ty =
                    match Instr.result_ty body.(r) with
                    | Some t -> t
                    | None -> Types.F32
                  in
                  ext_pos.(c).(r) <-
                    emit
                      (Vinstr.Vextract { ty; src = Vinstr.V vec_pos.(r); lane = c })
                end;
                Instr.Reg ext_pos.(c).(r))
        | Instr.Index _ | Instr.Param _ | Instr.Imm_int _ | Instr.Imm_float _ ->
            op
      in
      (* Vector operand; emits a pack when the producer is scalarized. *)
      let vector_operand (op : Instr.operand) : Vinstr.voperand =
        match op with
        | Instr.Reg r -> (
            match mode.(r) with
            | Packed -> Vinstr.V vec_pos.(r)
            | Invariant -> Vinstr.Splat (Instr.Reg sca_pos.(0).(r))
            | Scalarized ->
                let ty =
                  match Instr.result_ty body.(r) with
                  | Some t -> t
                  | None -> Types.F32
                in
                let srcs =
                  Array.init vf (fun c -> Instr.Reg sca_pos.(c).(r))
                in
                Vinstr.V (emit (Vinstr.Vpack { ty; srcs })))
        | Instr.Index v when String.equal v inner.var -> Vinstr.V (get_iota ())
        | Instr.Index _ | Instr.Param _ | Instr.Imm_int _ | Instr.Imm_float _ ->
            Vinstr.Splat op
      in
      (* [Sc { copy = c }] executes with the innermost variable already bound
         to its lane-c value, so subscripts must not be shifted here. *)
      let emit_scalarized pos instr =
        for c = 0 to vf - 1 do
          let remapped = Instr.map_operands (scalar_operand c) instr in
          sca_pos.(c).(pos) <- emit (Vinstr.Sc { copy = c; instr = remapped })
        done
      in
      Array.iteri
        (fun pos instr ->
          let demanded = dv.(pos) || ds.(pos) || Instr.is_store instr in
          if demanded then
            match mode.(pos) with
            | Invariant ->
                sca_pos.(0).(pos) <- emit (Vinstr.Sc { copy = 0; instr })
            | Scalarized -> emit_scalarized pos instr
            | Packed -> (
                let v =
                  match instr with
                  | Instr.Bin { ty; op; a; b } ->
                      Some
                        (Vinstr.Vbin
                           { ty; op; a = vector_operand a; b = vector_operand b })
                  | Instr.Una { ty; op; a } ->
                      Some (Vinstr.Vuna { ty; op; a = vector_operand a })
                  | Instr.Fma { ty; a; b; c } ->
                      Some
                        (Vinstr.Vfma
                           { ty; a = vector_operand a; b = vector_operand b;
                             c = vector_operand c })
                  | Instr.Cmp { ty; op; a; b } ->
                      Some
                        (Vinstr.Vcmp
                           { ty; op; a = vector_operand a; b = vector_operand b })
                  | Instr.Select { ty; cond; if_true; if_false } ->
                      Some
                        (Vinstr.Vselect
                           { ty; cond = vector_operand cond;
                             if_true = vector_operand if_true;
                             if_false = vector_operand if_false })
                  | Instr.Cast { src_ty; dst_ty; a } ->
                      Some (Vinstr.Vcast { src_ty; dst_ty; a = vector_operand a })
                  | Instr.Load { ty; addr = Instr.Affine { arr; dims } } ->
                      Some (Vinstr.Vload { ty; arr; dims; access = Vinstr.Contig })
                  | Instr.Store { ty; addr = Instr.Affine { arr; dims }; src } ->
                      Some
                        (Vinstr.Vstore
                           { ty; arr; dims; access = Vinstr.Contig;
                             src = vector_operand src })
                  | Instr.Load { addr = Instr.Indirect _; _ }
                  | Instr.Store { addr = Instr.Indirect _; _ } ->
                      None
                in
                match v with
                | Some vi -> vec_pos.(pos) <- emit vi
                | None ->
                    (* Indirect accesses are never marked Packed. *)
                    emit_scalarized pos instr))
        body;
      (* Horizontal reduction combines, one per accumulator; packing the
         source may still emit a trailing [Vpack] of scalarized lanes. *)
      let vreductions =
        List.map
          (fun (r : Kernel.reduction) ->
            {
              Vinstr.vr_name = r.red_name;
              vr_ty = r.red_ty;
              vr_op = r.red_op;
              vr_src = vector_operand r.red_src;
              vr_init = r.red_init;
            })
          k.reductions
      in
      Ok
        {
          Vinstr.scalar = k;
          vf;
          ic = 1;
          vbody = List.rev !vbody;
          vreductions;
          source = Vinstr.Src_slp;
        }
    end
  end
