(* Per-kernel legality summary: the full legal (transform x VF) space the
   autotuner enumerates, derived from the innermost dependence oracle
   ([Dependence], whose verdicts the golden tables lock), the nest-wide
   graph ([Depgraph], direction vectors for interchange), and the idiom
   tags ([Idiom], reduction admission).

   [lib/vect] consumes these predicates instead of re-deriving ad-hoc
   checks: LLV asks [llv_ok] at its full vf*ic span, SLP asks [slp_ok]
   (dependence legality plus reduction admissibility), the unroller is
   always legal, and interchange asks [interchange_verdict] for the
   direction-vector argument. *)

open Vir

(* --- per-transform predicates ------------------------------------------ *)

(* Loop-level widening: statements stay in order, each runs all VF lanes
   before the next; legal exactly when every constraining carried
   dependence has distance >= vf. *)
let llv_ok (k : Kernel.t) ~vf = Dependence.legal_for_vf k vf

(* SLP packing after virtual unrolling shares LLV's legality criterion;
   reduction loops are admitted when every accumulator is an
   order-insensitive idiom (always true in this IR — the tag makes the
   admission explicit where SLP used to refuse). *)
let slp_ok (k : Kernel.t) ~vf =
  Dependence.legal_for_vf k vf && Idiom.reductions_vectorizable k

(* Unrolling preserves the complete statement execution order, so it is
   legal at every factor. *)
let unroll_ok (_ : Kernel.t) ~uf = uf >= 2

type ix_verdict =
  | Ix_legal
  | Ix_illegal of string  (* the array with a (<,>) direction vector *)
  | Ix_inapplicable of string  (* not a 2-level nest, or unanalyzable *)

let ix_verdict_to_string = function
  | Ix_legal -> "legal"
  | Ix_illegal arr -> Printf.sprintf "illegal ((<,>) direction on %s)" arr
  | Ix_inapplicable s -> Printf.sprintf "inapplicable (%s)" s

(* Interchange reverses the direction vector of every dependence: legal
   exactly when no edge has a (<,>) vector (which would become the
   impossible (>,<)), and decidable only when every edge's directions are
   known. *)
let interchange_verdict (k : Kernel.t) =
  if List.length k.loops <> 2 then Ix_inapplicable "not a two-level nest"
  else
    let g = Depgraph.build k in
    let unknown =
      List.find_opt
        (fun (e : Depgraph.edge) -> e.e_carried = Depgraph.Carried_unknown)
        g.g_edges
    in
    match unknown with
    | Some e ->
        Ix_inapplicable
          (Printf.sprintf "dependence on %s has unknown direction" e.e_array)
    | None -> (
        let bad =
          List.find_opt
            (fun (e : Depgraph.edge) ->
              e.e_dirs.(0) = Subscript.Lt && e.e_dirs.(1) = Subscript.Gt)
            g.g_edges
        in
        match bad with Some e -> Ix_illegal e.e_array | None -> Ix_legal)

(* --- the summary -------------------------------------------------------- *)

type t = {
  l_kernel : string;
  l_vf_limit : Dependence.vf_limit;
  l_llv : (int * bool) list;
  l_slp : (int * bool) list;
  l_unroll : (int * bool) list;
  l_interchange : ix_verdict;
  l_idioms : Idiom.t list;
  l_assumed : bool;  (* legality rests on a runtime assumption *)
}

let default_vfs = [ 2; 4; 8; 16 ]

let summarize ?(vfs = default_vfs) (k : Kernel.t) =
  {
    l_kernel = k.name;
    l_vf_limit = Dependence.vf_limit k;
    l_llv = List.map (fun vf -> (vf, llv_ok k ~vf)) vfs;
    l_slp = List.map (fun vf -> (vf, slp_ok k ~vf)) vfs;
    l_unroll = List.map (fun uf -> (uf, unroll_ok k ~uf)) vfs;
    l_interchange = interchange_verdict k;
    l_idioms = Idiom.recognize k;
    l_assumed = Dependence.needs_runtime_assumption k;
  }

let legal_vfs col = List.filter_map (fun (vf, ok) -> if ok then Some vf else None) col

let pp fmt s =
  let show col =
    match legal_vfs col with
    | [] -> "none"
    | vfs -> String.concat "," (List.map string_of_int vfs)
  in
  Format.fprintf fmt
    "@[<v>kernel %s@,  vf limit: %s@,  llv: %s@,  slp: %s@,  unroll: %s@,  interchange: %s@,  idioms: %s@,  runtime assumption: %b@]"
    s.l_kernel
    (match s.l_vf_limit with
    | Dependence.Unlimited -> "unlimited"
    | Dependence.Max_vf m -> string_of_int m)
    (show s.l_llv) (show s.l_slp) (show s.l_unroll)
    (ix_verdict_to_string s.l_interchange)
    (match s.l_idioms with
    | [] -> "none"
    | l -> String.concat ", " (List.map Idiom.to_string l))
    s.l_assumed
