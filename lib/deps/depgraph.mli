(** Nest-wide dependence graph with per-depth direction vectors.

    Edges are normalized so the source instance executes no later than the
    sink: the leading non-'=' direction entry is always '<', and distances
    are sink-minus-source iteration counts (positive at the carrying
    depth).  The innermost-loop legality oracle remains [Dependence]; this
    graph supplies nest-level structure — interchange direction vectors,
    per-depth carried classification, and the dependence feature columns. *)

open Vir

type carried =
  | Independent  (** same-iteration dependence at every depth *)
  | Carried of int  (** carried by the loop at this depth (0 = outermost) *)
  | Carried_unknown  (** carried, but the depth cannot be determined *)

type edge = {
  e_src : int;
  e_snk : int;
  e_array : string;
  e_kind : Dependence.kind;
  e_dirs : Subscript.direction array;  (** per depth, outermost first *)
  e_dist : int option array;  (** exact iteration distance per depth *)
  e_carried : carried;
  e_assumed : bool;  (** rests on index-array conflict freedom *)
}

type t = {
  g_kernel : Kernel.t;
  g_depth : int;
  g_loop_vars : string list;
  g_edges : edge list;
}

val carried_to_string : carried -> string
val build : Kernel.t -> t

val carried_at : t -> int -> edge list
val unknown_carried : t -> edge list
val loop_independent : t -> edge list

(** Count of carried dependences per depth (unknown-depth edges charged to
    the innermost loop). *)
val carried_counts : t -> int array

(** Minimum carried distance over all carried edges (unknown distances
    count as 1); [None] when nothing is carried. *)
val min_carried_distance : t -> int option

(** Exact per-edge distance vectors, excluding all-zero (loop-independent)
    ones; [None] when any edge lacks exact distances at every depth. *)
val distance_vectors : t -> (string * int list) list option

val pp_edge : Format.formatter -> edge -> unit
