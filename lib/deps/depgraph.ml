(* Nest-wide dependence graph.

   Nodes are the memory references of the body; edges are dependences
   normalized so the source instance executes no later than the sink
   (direction vectors read outermost depth first and their leading
   non-'=' entry is always '<').  Each edge records the per-depth
   direction, the exact per-depth iteration distance where the subscript
   tests pin one, the depth (if any) that carries the dependence, and
   whether it rests on the index-array conflict-freedom assumption.

   The innermost-loop legality oracle stays [Dependence] — byte-for-byte
   the verdicts the golden tables lock — while this graph supplies the
   nest-level structure: interchange direction vectors, per-depth carried
   counts for the F12 dependence features, and the [vecmodel deps]
   report. *)

open Vir

type carried = Independent | Carried of int | Carried_unknown

type edge = {
  e_src : int;  (* body position of the source access *)
  e_snk : int;  (* body position of the sink access *)
  e_array : string;
  e_kind : Dependence.kind;
  e_dirs : Subscript.direction array;  (* per depth, outermost first *)
  e_dist : int option array;  (* exact iteration distance per depth *)
  e_carried : carried;
  e_assumed : bool;
}

type t = {
  g_kernel : Kernel.t;
  g_depth : int;
  g_loop_vars : string list;
  g_edges : edge list;
}

let carried_to_string = function
  | Independent -> "independent"
  | Carried d -> Printf.sprintf "carried@%d" d
  | Carried_unknown -> "carried@?"

(* --- construction ------------------------------------------------------- *)

type mem_ref = { pos : int; store : bool; addr : Instr.addr }

let collect_refs (k : Kernel.t) =
  List.concat
    (List.mapi
       (fun pos instr ->
         match instr with
         | Instr.Load { addr; _ } -> [ { pos; store = false; addr } ]
         | Instr.Store { addr; _ } -> [ { pos; store = true; addr } ]
         | Instr.Bin _ | Instr.Una _ | Instr.Fma _ | Instr.Cmp _
         | Instr.Select _ | Instr.Cast _ ->
             [])
       k.body)

let classify_carried dirs =
  let n = Array.length dirs in
  let rec go i =
    if i >= n then Independent
    else
      match dirs.(i) with
      | Subscript.Eq -> go (i + 1)
      | Subscript.Lt -> Carried i
      | Subscript.Gt ->
          (* Cannot happen on normalized edges; treated as carried here so a
             raw (unnormalized) vector still classifies conservatively. *)
          Carried i
  in
  go 0

let flip_dir = function
  | Subscript.Lt -> Subscript.Gt
  | Subscript.Gt -> Subscript.Lt
  | Subscript.Eq -> Subscript.Eq

(* Normalize one feasible (dirs, dist) between r1 and r2 into an edge whose
   source instance executes no later than its sink.  [Subscript] reports
   dist = t1 - t2; edges store the conventional sink-minus-source iteration
   distance, positive at the carrying depth.  [None] drops the trivial
   self-instance case. *)
let normalize ~depth:_ r1 r2 ~assumed (dirs, dist) =
  let first_non_eq =
    Array.to_list dirs |> List.find_opt (fun d -> d <> Subscript.Eq)
  in
  let src, snk, dirs, dist =
    match first_non_eq with
    | Some Subscript.Gt ->
        (* Instance of r2 executes first: flip the vector; dist = t1 - t2 is
           already sink minus source. *)
        (r2, r1, Array.map flip_dir dirs, dist)
    | Some _ ->
        (* Instance of r1 executes first: sink minus source = t2 - t1. *)
        (r1, r2, dirs, Array.map (Option.map (fun d -> -d)) dist)
    | None ->
        (* Loop-independent: ordered by body position; distances all 0. *)
        if r1.pos <= r2.pos then (r1, r2, dirs, dist) else (r2, r1, dirs, dist)
  in
  if first_non_eq = None && r1.pos = r2.pos then None
  else
    Some
      {
        e_src = src.pos;
        e_snk = snk.pos;
        e_array = Instr.addr_array r1.addr;
        e_kind =
          (match (src.store, snk.store) with
          | true, false -> Dependence.Flow
          | false, true -> Dependence.Anti
          | true, true -> Dependence.Output
          | false, false -> invalid_arg "Depgraph: load/load pair");
        e_dirs = dirs;
        e_dist = dist;
        e_carried = classify_carried dirs;
        e_assumed = assumed;
      }

let star_edges ~depth r1 r2 ~assumed =
  (* Unanalyzable pair: a dependence may run either way at any depth.
     Record one conservatively-carried edge per order. *)
  let mk src snk =
    {
      e_src = src.pos;
      e_snk = snk.pos;
      e_array = Instr.addr_array r1.addr;
      e_kind =
        (match (src.store, snk.store) with
        | true, false -> Dependence.Flow
        | false, true -> Dependence.Anti
        | true, true -> Dependence.Output
        | false, false -> invalid_arg "Depgraph: load/load pair");
      e_dirs = Array.make depth Subscript.Lt;
      e_dist = Array.make depth None;
      e_carried = Carried_unknown;
      e_assumed = assumed;
    }
  in
  if r1.pos = r2.pos then [ mk r1 r2 ]
  else [ mk r1 r2; mk r2 r1 ]

let test_pair ~depth ~(k : Kernel.t) r1 r2 =
  if (not r1.store) && not r2.store then []
  else
    let arr1 = Instr.addr_array r1.addr and arr2 = Instr.addr_array r2.addr in
    if not (String.equal arr1 arr2) then []
    else
      match (r1.addr, r2.addr) with
      | Instr.Affine { dims = dims1; _ }, Instr.Affine { dims = dims2; _ }
        when List.length dims1 = List.length dims2 -> (
          match Subscript.directions ~k dims1 dims2 with
          | Some feasible ->
              List.filter_map (normalize ~depth r1 r2 ~assumed:false) feasible
          | None -> star_edges ~depth r1 r2 ~assumed:false)
      | (Instr.Affine _ | Instr.Indirect _), _ ->
          (* Indirect on at least one side, or mismatched dimensionality:
             assume index arrays are conflict-free permutations, mirroring
             [Dependence]. *)
          star_edges ~depth r1 r2 ~assumed:true

let edge_order e =
  ( e.e_array,
    e.e_src,
    e.e_snk,
    Array.to_list e.e_dirs,
    Array.to_list e.e_dist,
    e.e_assumed )

let build (k : Kernel.t) =
  let depth = List.length k.loops in
  let refs = collect_refs k in
  let rec pairs acc = function
    | [] -> acc
    | r :: rest ->
        let here =
          List.concat_map (fun r' -> test_pair ~depth ~k r r') (r :: rest)
        in
        pairs (List.rev_append here acc) rest
  in
  let edges =
    pairs [] refs
    |> List.sort_uniq (fun a b -> compare (edge_order a) (edge_order b))
  in
  {
    g_kernel = k;
    g_depth = depth;
    g_loop_vars = List.map (fun (l : Kernel.loop) -> l.var) k.loops;
    g_edges = edges;
  }

(* --- queries ------------------------------------------------------------ *)

let carried_at g depth =
  List.filter (fun e -> e.e_carried = Carried depth) g.g_edges

let unknown_carried g =
  List.filter (fun e -> e.e_carried = Carried_unknown) g.g_edges

let loop_independent g =
  List.filter (fun e -> e.e_carried = Independent) g.g_edges

(* Count of dependences carried at each depth; unknown-depth edges are
   charged to the innermost loop (the conservative place: they block
   vectorization there). *)
let carried_counts g =
  let counts = Array.make (max 1 g.g_depth) 0 in
  List.iter
    (fun e ->
      match e.e_carried with
      | Carried d -> counts.(d) <- counts.(d) + 1
      | Carried_unknown ->
          let d = max 0 (g.g_depth - 1) in
          counts.(d) <- counts.(d) + 1
      | Independent -> ())
    g.g_edges;
  counts

(* Minimum exact distance at the carrying depth across carried edges;
   edges carried at an unknown distance count as distance 1 (the
   conservative reading [Dependence] also uses).  [None] = nothing is
   carried. *)
let min_carried_distance g =
  List.fold_left
    (fun acc e ->
      let dist =
        match e.e_carried with
        | Independent -> None
        | Carried d -> (
            match e.e_dist.(d) with Some x -> Some (abs x) | None -> Some 1)
        | Carried_unknown -> Some 1
      in
      match (acc, dist) with
      | None, d -> d
      | d, None -> d
      | Some a, Some b -> Some (min a b))
    None g.g_edges

(* Exact distance vectors (one per edge), when every depth of every
   carried or independent edge has one.  Loop-independent all-zero vectors
   are dropped.  [None] when any edge lacks an exact vector. *)
let distance_vectors g =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | e :: rest ->
        let dists = Array.to_list e.e_dist in
        if List.exists (fun d -> d = None) dists then None
        else
          let v = List.map Option.get dists in
          if List.for_all (fun d -> d = 0) v then go acc rest
          else go ((e.e_array, v) :: acc) rest
  in
  go [] g.g_edges

let pp_edge fmt e =
  Format.fprintf fmt "%s dep on %s: %d -> %d, dirs (%s), %s%s"
    (Dependence.kind_to_string e.e_kind)
    e.e_array e.e_src e.e_snk
    (Subscript.dirs_to_string e.e_dirs)
    (carried_to_string e.e_carried)
    (if e.e_assumed then " (assumed safe)" else "")
