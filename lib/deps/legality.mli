(** Per-kernel legality summary over the (transform x VF) space, the
    oracle the vectorizers consult and the autotuner enumerates.

    Innermost verdicts come from [Dependence] (unchanged, golden-locked);
    interchange uses the [Depgraph] direction vectors; reduction admission
    uses the [Idiom] tags. *)

open Vir

(** Loop-level widening legality at [vf] (LLV checks its full vf*ic span). *)
val llv_ok : Kernel.t -> vf:int -> bool

(** SLP packing legality at [vf]: dependence legality plus order-insensitive
    reduction idioms. *)
val slp_ok : Kernel.t -> vf:int -> bool

(** Unrolling preserves execution order: legal at every factor >= 2. *)
val unroll_ok : Kernel.t -> uf:int -> bool

type ix_verdict =
  | Ix_legal
  | Ix_illegal of string
      (** the array whose (<,>) direction vector would reverse into (>,<) *)
  | Ix_inapplicable of string
      (** not a two-level nest, or a dependence direction is unknown *)

val ix_verdict_to_string : ix_verdict -> string
val interchange_verdict : Kernel.t -> ix_verdict

type t = {
  l_kernel : string;
  l_vf_limit : Dependence.vf_limit;
  l_llv : (int * bool) list;
  l_slp : (int * bool) list;
  l_unroll : (int * bool) list;
  l_interchange : ix_verdict;
  l_idioms : Idiom.t list;
  l_assumed : bool;
}

(** VFs the summary tabulates by default: [2; 4; 8; 16]. *)
val default_vfs : int list

val summarize : ?vfs:int list -> Kernel.t -> t

(** The VFs a column marks legal. *)
val legal_vfs : (int * bool) list -> int list

val pp : Format.formatter -> t -> unit
