(** Per-depth subscript tests for the nest-wide dependence graph: ZIV and
    strong-SIV dimensions are decided exactly, weak-SIV and MIV dimensions
    through a GCD integrality test plus Banerjee-style interval bounds
    evaluated under each direction hypothesis.  Trip counts stay symbolic
    in the problem size, so pruning a direction is sound at every n. *)

type direction = Lt | Eq | Gt  (** '<', '=', '>' — instance 1 vs instance 2 *)

val direction_to_string : direction -> string

(** Render a direction vector, outermost depth first, e.g. ["<="]. *)
val dirs_to_string : direction array -> string

(** Extended integers: the n-dependent end of a symbolic trip count is
    infinite. *)
type ebound = Ninf | Fin of int | Pinf

(** One loop of the nest in index-value space. *)
type axis = { ax_var : string; ax_step : int; ax_vlo : ebound; ax_vhi : ebound }

(** The iteration space of a kernel, outermost loop first. *)
val axes : Vir.Kernel.t -> axis list

(** Feasible direction vectors between one instance of each affine
    reference (dims lists, outermost subscript order as written), with the
    exact per-depth iteration distance [t1 - t2] where the strong-SIV test
    pins it ([Some 0] wherever the direction is [Eq]).

    [None] means the pair is not analyzable (symbolic subscript parts
    differ); the caller must assume every direction.  [Some []] means the
    references are proven independent. *)
val directions :
  k:Vir.Kernel.t ->
  Vir.Instr.dim list ->
  Vir.Instr.dim list ->
  (direction array * int option array) list option
