(* Idiom recognition over the scalar IR.

   Three families matter to the vectorizers:

   - reductions: the IR's [Kernel.reduction] accumulators.  Every redop
     (sum, prod, min, max) is order-insensitive, so lanes may be combined
     in any order and both LLV and SLP can admit the loop with an explicit
     idiom tag instead of refusing;
   - first-order recurrences: a flow dependence of an array onto itself at
     a small constant carried distance (a[i] = f(a[i-d])).  These bound the
     legal VF by the distance but are otherwise well-understood;
   - scans: the distance-1 recurrence whose update is a single binary
     operation on the previous element (a[i] = a[i-1] op x), the prefix-sum
     shape that needs a dedicated (log-depth) vector schedule. *)

open Vir

type t =
  | Reduction of { name : string; op : Op.redop }
  | Recurrence of { array : string; distance : int }
  | Scan of { array : string; op : Op.binop }

let to_string = function
  | Reduction { name; op } ->
      Printf.sprintf "reduction:%s:%s" (Op.redop_to_string op) name
  | Recurrence { array; distance } ->
      Printf.sprintf "recurrence:%s:%d" array distance
  | Scan { array; op } ->
      Printf.sprintf "scan:%s:%s" array (Op.binop_to_string op)

(* Constraining self-recurrences of the innermost loop: flow edges at a
   known constant distance whose sink (the load) sits at or before the
   source (the store), per array, keeping the smallest distance. *)
let recurrences (k : Kernel.t) =
  let deps = Dependence.analyze k in
  let best : (string, int) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (d : Dependence.dep) ->
      match (d.kind, d.distance) with
      | Dependence.Flow, Dependence.Dconst dist
        when d.snk_pos <= d.src_pos && not d.assumed -> (
          match Hashtbl.find_opt best d.array with
          | Some prev when prev <= dist -> ()
          | _ -> Hashtbl.replace best d.array dist)
      | _ -> ())
    deps;
  Hashtbl.fold (fun array distance acc -> (array, distance) :: acc) best []
  |> List.sort compare

(* A distance-1 recurrence is a scan when the stored value is one binary
   operation away from the previous element's load: find a flow edge
   store[src_pos] <- Bin(op, load[snk_pos], _) with distance 1. *)
let scan_op (k : Kernel.t) array =
  let body = Array.of_list k.body in
  let deps = Dependence.analyze k in
  List.find_map
    (fun (d : Dependence.dep) ->
      match (d.kind, d.distance) with
      | Dependence.Flow, Dependence.Dconst 1
        when String.equal d.array array && d.snk_pos <= d.src_pos
             && not d.assumed -> (
          match body.(d.src_pos) with
          | Instr.Store { src = Instr.Reg r; _ } -> (
              match body.(r) with
              | Instr.Bin { op; a; b; _ }
                when a = Instr.Reg d.snk_pos || b = Instr.Reg d.snk_pos ->
                  Some op
              | _ -> None)
          | _ -> None)
      | _ -> None)
    deps

let recognize (k : Kernel.t) =
  let reds =
    List.map
      (fun (r : Kernel.reduction) ->
        Reduction { name = r.red_name; op = r.red_op })
      k.reductions
  in
  let recs =
    List.map
      (fun (array, distance) ->
        match (distance, scan_op k array) with
        | 1, Some op -> Scan { array; op }
        | _ -> Recurrence { array; distance })
      (recurrences k)
  in
  reds @ recs

(* Every redop in the IR is an order-insensitive accumulation, so any
   reduction loop may be admitted by the vectorizers under the idiom tag;
   the guard documents the contract and keeps a seam for non-associative
   accumulators. *)
let reductions_vectorizable (k : Kernel.t) =
  List.for_all
    (fun (r : Kernel.reduction) -> List.mem r.red_op Op.all_redops)
    k.reductions

let has_reduction idioms =
  List.exists (function Reduction _ -> true | _ -> false) idioms

let has_recurrence idioms =
  List.exists (function Recurrence _ | Scan _ -> true | _ -> false) idioms
