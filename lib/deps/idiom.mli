(** Idiom recognition: reductions, first-order recurrences, and scans.

    The tags let the vectorizers admit reduction loops explicitly instead
    of blanket-refusing, and give the cost model / lints a name for the
    recurrence shapes that bound the legal VF. *)

open Vir

type t =
  | Reduction of { name : string; op : Op.redop }
      (** order-insensitive accumulator [name <- name op src] *)
  | Recurrence of { array : string; distance : int }
      (** a[i] = f(a[i - distance]): first-order self-recurrence *)
  | Scan of { array : string; op : Op.binop }
      (** a[i] = a[i-1] op x: prefix-accumulation shape *)

val to_string : t -> string

(** All idioms of the kernel, reductions first, then per-array recurrence/
    scan tags sorted by array name. *)
val recognize : Kernel.t -> t list

(** True when every reduction accumulator uses an order-insensitive op
    (always the case in this IR; the guard is the admission contract the
    vectorizers check). *)
val reductions_vectorizable : Kernel.t -> bool

val has_reduction : t list -> bool
val has_recurrence : t list -> bool
