(* Per-depth subscript tests for the nest-wide dependence graph.

   Given two affine references in the same loop nest, decide which
   direction vectors (one of <, =, > per loop depth, outermost first) can
   carry a dependence between them, and attach exact per-depth iteration
   distances where the strong-SIV test pins them.

   The machinery is the classic hierarchy: ZIV and strong-SIV dimensions
   are decided exactly; weak-SIV and MIV dimensions fall back to a GCD
   integrality test plus Banerjee-style interval bounds evaluated under
   each direction hypothesis.  Iteration counts are symbolic in the
   problem size n (Tn, Tn_div, Tn_minus, Tn2, ...), so the bounds use
   extended integers with +/- infinity for the n-dependent ends: a
   direction is only pruned when it is infeasible for EVERY problem size,
   which keeps the oracle sound at all the sizes the translation
   validator interprets. *)

open Vir

type direction = Lt | Eq | Gt

let direction_to_string = function Lt -> "<" | Eq -> "=" | Gt -> ">"

let dirs_to_string dirs =
  String.concat "" (Array.to_list (Array.map direction_to_string dirs))

(* --- extended integers ------------------------------------------------- *)

type ebound = Ninf | Fin of int | Pinf

let eb_add a b =
  match (a, b) with
  | Ninf, Pinf | Pinf, Ninf -> invalid_arg "eb_add: opposite infinities"
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y -> Fin (x + y)

let eb_scale c = function
  | Fin x -> Fin (c * x)
  | Ninf -> if c > 0 then Ninf else if c < 0 then Pinf else Fin 0
  | Pinf -> if c > 0 then Pinf else if c < 0 then Ninf else Fin 0

let eb_le a b =
  match (a, b) with
  | Ninf, _ | _, Pinf -> true
  | Pinf, _ | _, Ninf -> false
  | Fin x, Fin y -> x <= y

(* Closed interval over extended integers; [None] is the empty interval. *)
type ival = (ebound * ebound) option

let ival_make lo hi : ival = if eb_le lo hi then Some (lo, hi) else None

let ival_add (a : ival) (b : ival) : ival =
  match (a, b) with
  | None, _ | _, None -> None
  | Some (l1, h1), Some (l2, h2) -> Some (eb_add l1 l2, eb_add h1 h2)

(* Interval of c*t for t in [lo, hi]. *)
let ival_coeff c lo hi : ival =
  if eb_le lo hi then
    if c >= 0 then Some (eb_scale c lo, eb_scale c hi)
    else Some (eb_scale c hi, eb_scale c lo)
  else None

let ival_contains_zero : ival -> bool = function
  | None -> false
  | Some (lo, hi) -> eb_le lo (Fin 0) && eb_le (Fin 0) hi

(* --- the iteration space ----------------------------------------------- *)

(* One loop of the nest, in index-value space: the index variable ranges
   over [ax_vlo, ax_vhi] stepping by ax_step.  Trip counts other than
   [Tconst] are unbounded in n, so the far end is infinite. *)
type axis = { ax_var : string; ax_step : int; ax_vlo : ebound; ax_vhi : ebound }

let axes (k : Kernel.t) =
  List.map
    (fun (l : Kernel.loop) ->
      let far =
        match l.trip with
        | Kernel.Tconst c -> Fin (l.start + (l.step * (c - 1)))
        | Kernel.Tn | Kernel.Tn_div _ | Kernel.Tn_minus _ | Kernel.Tn2
        | Kernel.Tn2_minus _ ->
            if l.step >= 0 then Pinf else Ninf
      in
      if l.step >= 0 then
        { ax_var = l.var; ax_step = l.step; ax_vlo = Fin l.start; ax_vhi = far }
      else
        { ax_var = l.var; ax_step = l.step; ax_vlo = far; ax_vhi = Fin l.start })
    k.loops

(* --- per-axis Banerjee contribution ------------------------------------ *)

(* Interval of a*v1 + b*v2 where v1, v2 are the axis values of the two
   instances and the direction hypothesis relates their ITERATION order.
   With a positive step, an earlier iteration has a smaller value (by at
   least |step|); a negative step reverses the value order.  The coupled
   term is decoupled by the substitution v_later = v_earlier + delta with
   delta >= |step|, which over-approximates (soundly). *)
let axis_contrib ~(ax : axis) ~(dir : direction) a b : ival =
  let lo = ax.ax_vlo and hi = ax.ax_vhi in
  let s = abs ax.ax_step in
  let s = if s = 0 then 1 else s in
  let span =
    (* upper bound on delta = |v1 - v2| *)
    match (lo, hi) with Fin l, Fin h -> Fin (h - l) | _ -> Pinf
  in
  let delta_iv = ival_make (Fin s) span in
  let sub_s = function Fin x -> Fin (x - s) | e -> e in
  let with_delta c =
    match delta_iv with None -> None | Some (dl, dh) -> ival_coeff c dl dh
  in
  let v1_smaller () =
    (* v2 = v1 + delta: (a+b)*v1 + b*delta, v1 in [lo, hi - s]. *)
    ival_add (ival_coeff (a + b) lo (sub_s hi)) (with_delta b)
  in
  let v2_smaller () =
    (* v1 = v2 + delta: (a+b)*v2 + a*delta, v2 in [lo, hi - s]. *)
    ival_add (ival_coeff (a + b) lo (sub_s hi)) (with_delta a)
  in
  match dir with
  | Eq -> ival_coeff (a + b) lo hi
  | Lt ->
      (* instance 1 iterates earlier *)
      if ax.ax_step >= 0 then v1_smaller () else v2_smaller ()
  | Gt -> if ax.ax_step >= 0 then v2_smaller () else v1_smaller ()

(* --- per-dimension tests ------------------------------------------------ *)

let sorted_assoc l = List.sort compare l

(* The symbolic (parameter and n-relative) parts of the two dims must
   coincide for any classic test to apply; they then cancel in the
   difference. *)
let symbolic_match (d1 : Instr.dim) (d2 : Instr.dim) =
  sorted_assoc d1.pterms = sorted_assoc d2.pterms && d1.rel_n = d2.rel_n

type dim_shape =
  | Ziv of bool  (* feasible at all? (offsets equal) *)
  | Strong_siv of { var : string; delta_t : int option }
      (* exact iteration distance t1 - t2; None = non-integral, no dep *)
  | General  (* weak-SIV / MIV: GCD + Banerjee decide per direction *)

let dim_shape ~(axes : axis list) (d1 : Instr.dim) (d2 : Instr.dim) =
  let involved =
    List.filter
      (fun ax -> Kernel.coeff_of ax.ax_var d1 <> 0 || Kernel.coeff_of ax.ax_var d2 <> 0)
      axes
  in
  match involved with
  | [] -> Ziv (d1.off = d2.off)
  | [ ax ] ->
      let c1 = Kernel.coeff_of ax.ax_var d1 and c2 = Kernel.coeff_of ax.ax_var d2 in
      if c1 = c2 then begin
        let stride = c1 * ax.ax_step in
        let stride = if stride = 0 then 1 else stride in
        let diff = d2.off - d1.off in
        if diff mod stride <> 0 then Strong_siv { var = ax.ax_var; delta_t = None }
        else Strong_siv { var = ax.ax_var; delta_t = Some (diff / stride) }
      end
      else General
  | _ -> General

(* GCD integrality over the iteration-space form of the dim difference:
   sum c1_v*step_v*t_v - sum c2_v*step_v*t'_v + K = 0 with
   K = sum (c1_v - c2_v)*start_v + o1 - o2 (starts are the low value ends;
   for negative steps the start is still the first value).  Unsolvable in
   integers when gcd of the coefficients does not divide K. *)
let gcd_infeasible ~(k : Kernel.t) (d1 : Instr.dim) (d2 : Instr.dim) =
  let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
  let g, konst =
    List.fold_left
      (fun (g, konst) (l : Kernel.loop) ->
        let c1 = Kernel.coeff_of l.var d1 and c2 = Kernel.coeff_of l.var d2 in
        let g = gcd (gcd g (c1 * l.step)) (c2 * l.step) in
        (g, konst + ((c1 - c2) * l.start)))
      (0, d1.off - d2.off)
      k.loops
  in
  g <> 0 && konst mod g <> 0

(* Banerjee feasibility of one dim under a full direction hypothesis. *)
let banerjee_feasible ~(axes : axis list) ~(dirs : direction array)
    (d1 : Instr.dim) (d2 : Instr.dim) =
  let iv =
    List.fold_left
      (fun acc (depth, ax) ->
        let a = Kernel.coeff_of ax.ax_var d1
        and b = -Kernel.coeff_of ax.ax_var d2 in
        if a = 0 && b = 0 then acc
        else ival_add acc (axis_contrib ~ax ~dir:dirs.(depth) a b))
      (Some (Fin (d1.off - d2.off), Fin (d1.off - d2.off)))
      (List.mapi (fun i ax -> (i, ax)) axes)
  in
  ival_contains_zero iv

(* --- direction-vector enumeration --------------------------------------- *)

let all_direction_vectors depth =
  let rec go d =
    if d = 0 then [ [] ]
    else
      let rest = go (d - 1) in
      List.concat_map (fun dir -> List.map (fun v -> dir :: v) rest) [ Lt; Eq; Gt ]
  in
  List.map Array.of_list (go depth)

(* Feasible direction vectors between one instance of each reference,
   with exact per-depth iteration distances (t1 - t2) where known.
   [None] = the pair is not analyzable (symbolic mismatch); the caller
   must assume every direction.  [Some []] = proven independent. *)
let directions ~(k : Kernel.t) (dims1 : Instr.dim list) (dims2 : Instr.dim list) :
    (direction array * int option array) list option =
  if List.length dims1 <> List.length dims2 then None
  else if not (List.for_all2 symbolic_match dims1 dims2) then None
  else begin
    let axs = axes k in
    let depth = List.length axs in
    let shapes = List.map2 (fun d1 d2 -> (dim_shape ~axes:axs d1 d2, d1, d2)) dims1 dims2 in
    (* Exact per-var deltas from strong-SIV dims; conflicting deltas or a
       non-integral delta prove independence outright. *)
    let exception Indep in
    try
      let exact : (string, int) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun (shape, _, _) ->
          match shape with
          | Ziv false -> raise Indep
          | Strong_siv { delta_t = None; _ } -> raise Indep
          | Strong_siv { var; delta_t = Some d } -> (
              match Hashtbl.find_opt exact var with
              | Some d' when d' <> d -> raise Indep
              | _ -> Hashtbl.replace exact var d)
          | Ziv true | General -> ())
        shapes;
      let general_dims =
        List.filter_map
          (fun (shape, d1, d2) -> match shape with General -> Some (d1, d2) | _ -> None)
          shapes
      in
      (* GCD infeasibility of any general dim is direction-independent. *)
      if List.exists (fun (d1, d2) -> gcd_infeasible ~k d1 d2) general_dims then
        Some []
      else begin
        let feasible =
          List.filter
            (fun dirs ->
              (* Exact deltas constrain their axis' direction. *)
              let exact_ok =
                List.for_all
                  (fun (i, ax) ->
                    match Hashtbl.find_opt exact ax.ax_var with
                    | None -> true
                    | Some d ->
                        let want = if d < 0 then Lt else if d = 0 then Eq else Gt in
                        dirs.(i) = want)
                  (List.mapi (fun i ax -> (i, ax)) axs)
              in
              exact_ok
              && List.for_all
                   (fun (d1, d2) -> banerjee_feasible ~axes:axs ~dirs d1 d2)
                   general_dims)
            (all_direction_vectors depth)
        in
        Some
          (List.map
             (fun dirs ->
               let dist =
                 Array.of_list
                   (List.mapi
                      (fun i ax ->
                        match Hashtbl.find_opt exact ax.ax_var with
                        | Some d -> Some d
                        | None -> if dirs.(i) = Eq then Some 0 else None)
                      axs)
               in
               (dirs, dist))
             feasible)
      end
    with Indep -> Some []
  end
