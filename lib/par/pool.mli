(** A fixed-size pool of worker domains with deterministic fork-join
    fan-out: results are returned in submission order regardless of which
    worker computed them.  The submitting domain helps drain the queue, so
    a pool of [size] workers uses [size + 1] cores during a map.  Parallel
    calls made from inside a worker run sequentially (no deadlock on the
    fixed pool), so nested [parallel_map] is safe for pure functions. *)

type t

(** [create ~size] spawns [size] worker domains ([size >= 1]). *)
val create : size:int -> t

val size : t -> int

(** Stop the workers and join them.  Pending jobs are dropped; only call
    once every submitted map has returned. *)
val shutdown : t -> unit

(** The process-wide shared pool, created on first use with
    [default_size ()] workers. *)
val default : unit -> t

(** Worker count for the default pool: [$VECMODEL_JOBS] when set to a
    positive integer, else [Domain.recommended_domain_count () - 1]
    (at least 1). *)
val default_size : unit -> int

(** Force every parallel entry point to run sequentially in the calling
    domain (used to time serial baselines).  Off by default. *)
val set_sequential : bool -> unit

val sequential : unit -> bool

(** [parallel_map f l] = [List.map f l] for pure [f], computed on the pool
    ([?pool] defaults to the shared pool) in chunks of [?chunk] elements
    (default: a multiple of the pool size).  If any application raises, the
    first exception observed is re-raised after all chunks finish.

    On a single-core host ([Domain.recommended_domain_count () < 2] and no
    [VECMODEL_JOBS] override) calls without an explicit [?pool] run inline
    in the calling domain: a worker domain would add cross-domain GC
    synchronisation without adding parallelism. *)
val parallel_map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list

(** Array variant of {!parallel_map}. *)
val parallel_map_array :
  ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** Array variant with the element index, [Array.mapi]-style. *)
val parallel_mapi_array :
  ?pool:t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
