(** A fixed-size pool of worker domains with deterministic fork-join
    fan-out: results are returned in submission order regardless of which
    worker computed them.  The submitting domain helps drain the queue, so
    a pool of [size] workers uses [size + 1] cores during a map.  Parallel
    calls made from inside a worker run sequentially (no deadlock on the
    fixed pool), so nested [parallel_map] is safe for pure functions.

    The pool is supervised: task failures are isolated with their index
    and backtrace, worker domains lost to (injected) crashes are replaced
    before the next fan-out, and {!supervised_map} adds bounded retry,
    deterministic backoff and cooperative per-task timeouts on top. *)

type t

(** Raised by the map entry points when one or more task applications
    raised: the failure with the {e smallest} task index (stable across
    worker counts and chunkings), with the original exception and its
    captured backtrace. *)
exception Task_failed of { index : int; exn : exn; backtrace : string }

(** [create ~size] spawns [size] worker domains ([size >= 1]).  If the
    runtime refuses to spawn any domain the pool degrades to inline
    execution instead of failing. *)
val create : size:int -> t

val size : t -> int

(** Worker domains currently serving the queue (crashed workers are
    replaced lazily, before the next fan-out). *)
val alive_workers : t -> int

(** Stop the workers and join them.  Pending jobs are dropped; only call
    once every submitted map has returned. *)
val shutdown : t -> unit

(** The process-wide shared pool, created on first use with
    [default_size ()] workers. *)
val default : unit -> t

(** Worker count for the default pool: [$VECMODEL_JOBS] when set to a
    positive integer, else [Domain.recommended_domain_count () - 1]
    (at least 1).  A malformed or non-positive [$VECMODEL_JOBS] is
    rejected with a one-line warning on stderr (once per process) and
    ignored. *)
val default_size : unit -> int

(** Validate a [$VECMODEL_JOBS] value: [Ok n] for a positive integer,
    [Error reason] otherwise. *)
val parse_jobs : string -> (int, string) result

(** Force every parallel entry point to run sequentially in the calling
    domain (used to time serial baselines).  Off by default. *)
val set_sequential : bool -> unit

val sequential : unit -> bool

(** Install a hook the submitting domain runs after every fan-out barrier
    ({!parallel_map} and its variants, and each {!supervised_map} call),
    before per-task failures are re-raised.  Used by the shadow-state
    sanitizer to verify shared master buffers at join points; exceptions
    propagate to the submitter.  Must be cheap when idle and callable
    from any domain. *)
val set_join_check : (unit -> unit) -> unit

val clear_join_check : unit -> unit

(** [parallel_map f l] = [List.map f l] for pure [f], computed on the pool
    ([?pool] defaults to the shared pool) in chunks of [?chunk] elements
    (default: a multiple of the pool size).  If any application raises,
    {!Task_failed} carrying the smallest failing index, the original
    exception and its backtrace is raised after all chunks finish.

    On a single-core host ([Domain.recommended_domain_count () < 2] and no
    [VECMODEL_JOBS] override) calls without an explicit [?pool] run inline
    in the calling domain: a worker domain would add cross-domain GC
    synchronisation without adding parallelism. *)
val parallel_map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list

(** Array variant of {!parallel_map}. *)
val parallel_map_array :
  ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** Array variant with the element index, [Array.mapi]-style. *)
val parallel_mapi_array :
  ?pool:t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** {2 Supervised fan-out} *)

(** Why a task ended without a result after its retry budget. *)
type failure = {
  f_index : int;  (** task index in the input list *)
  f_attempts : int;  (** executions consumed, including retries *)
  f_error : string;  (** printed exception, timeout or crash reason *)
  f_backtrace : string;  (** backtrace of the last failure, possibly [""] *)
}

(** [supervised_map f l] maps [f] over [l] on the pool with per-task
    fault isolation: each task yields [Ok (f x)] or, after [?retries]
    (default 2) additional attempts, [Error failure] — in input order,
    never an exception from [f].

    Failed tasks are retried in rounds; between rounds the submitter
    sleeps [?backoff_s] doubling per round (default 0, no sleep) and
    replaces worker domains lost to injected crashes.  [?timeout_s]
    cancels a task whose simulated hang exceeds it (cooperative: real
    compute in this model cannot block).  [?task_key] names tasks for
    fault-plan decisions (default: the index as a string) — pass a
    content-derived key to keep injection byte-identical across runs
    with different worker counts and input orders. *)
val supervised_map :
  ?pool:t ->
  ?retries:int ->
  ?timeout_s:float ->
  ?backoff_s:float ->
  ?task_key:(int -> string) ->
  ('a -> 'b) ->
  'a list ->
  ('b, failure) result list

(** {2 Supervision statistics (process-wide)} *)

type stats = {
  st_crashes : int;  (** injected worker-domain crashes observed *)
  st_respawned : int;  (** replacement worker domains spawned *)
  st_timeouts : int;  (** tasks cancelled at their deadline *)
  st_retries : int;  (** task re-executions after a failure *)
  st_failures : int;  (** tasks that exhausted their retry budget *)
  st_degraded : int;  (** fan-outs that fell back to sequential *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
