(* A fixed-size pool of worker domains (OCaml 5 [Domain] + [Mutex] /
   [Condition], no external dependencies) with deterministic fork-join
   fan-out.  Jobs are index ranges over an array of slots, so results land
   in submission order no matter which worker runs them.

   The submitting domain *helps*: after enqueueing its chunks it drains the
   shared queue alongside the workers, so a pool of [size] workers uses
   [size + 1] cores during a [parallel_map] and a machine with one core
   still makes progress.  Calls made from inside a worker (nested
   parallelism) run sequentially instead of deadlocking on the fixed pool. *)

type t = {
  size : int;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled when jobs are enqueued or stopping *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* Set in every worker domain: parallel entry points called from a worker
   fall back to sequential execution rather than blocking on a queue that
   only this very worker could drain. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Global kill-switch used by the benchmarks to time the serial baseline. *)
let sequential_flag = Atomic.make false

let set_sequential b = Atomic.set sequential_flag b
let sequential () = Atomic.get sequential_flag

let take_job pool =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.jobs with
    | Some j -> Some j
    | None ->
        if pool.stopping then None
        else begin
          Condition.wait pool.nonempty pool.mutex;
          next ()
        end
  in
  let job = next () in
  Mutex.unlock pool.mutex;
  job

let rec worker_loop pool =
  match take_job pool with
  | None -> ()
  | Some job ->
      job ();
      worker_loop pool

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let pool =
    { size; jobs = Queue.create (); mutex = Mutex.create ();
      nonempty = Condition.create (); stopping = false; workers = [] }
  in
  pool.workers <-
    List.init size (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            worker_loop pool));
  pool

let size pool = pool.size

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* --- the shared default pool -------------------------------------------- *)

let default_pool = ref None
let default_lock = Mutex.create ()

let jobs_override () =
  match Sys.getenv_opt "VECMODEL_JOBS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
       | Some n when n >= 1 -> Some n
       | Some _ | None -> None)
  | None -> None

let default_size () =
  match jobs_override () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* On a single-core host a worker domain adds cross-domain GC
   synchronisation without adding any parallelism, so fan-outs that would
   use the shared default pool run inline instead.  An explicit [?pool]
   argument or a [VECMODEL_JOBS] override still goes through the queue. *)
let inline_default () =
  jobs_override () = None && Domain.recommended_domain_count () < 2

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~size:(default_size ()) in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

(* --- fork-join fan-out ---------------------------------------------------- *)

(* Inclusive index ranges covering [0, n), [chunk] indices each. *)
let ranges ~n ~chunk =
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + chunk) ((lo, min (lo + chunk) n - 1) :: acc)
  in
  go 0 []

let run_indexed ?pool ?chunk ~n compute =
  if n > 0 then
    if sequential () || Domain.DLS.get in_worker
       || (Option.is_none pool && inline_default ())
    then
      for i = 0 to n - 1 do
        compute i
      done
    else begin
      let pool = match pool with Some p -> p | None -> default () in
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (n / ((pool.size + 1) * 4))
      in
      let ranges = ranges ~n ~chunk in
      let m = Mutex.create () in
      let finished = Condition.create () in
      let remaining = ref (List.length ranges) in
      let first_exn = ref None in
      let job (lo, hi) () =
        (try
           for i = lo to hi do
             compute i
           done
         with e ->
           Mutex.lock m;
           if !first_exn = None then first_exn := Some e;
           Mutex.unlock m);
        Mutex.lock m;
        decr remaining;
        if !remaining = 0 then Condition.broadcast finished;
        Mutex.unlock m
      in
      Mutex.lock pool.mutex;
      List.iter (fun r -> Queue.add (job r) pool.jobs) ranges;
      Condition.broadcast pool.nonempty;
      Mutex.unlock pool.mutex;
      (* Help: drain the queue until empty, then wait for our last chunks
         (which another worker may still be running). *)
      let rec help () =
        Mutex.lock pool.mutex;
        let j = Queue.take_opt pool.jobs in
        Mutex.unlock pool.mutex;
        match j with
        | Some j ->
            j ();
            help ()
        | None -> ()
      in
      help ();
      Mutex.lock m;
      while !remaining > 0 do
        Condition.wait finished m
      done;
      Mutex.unlock m;
      match !first_exn with Some e -> raise e | None -> ()
    end

let parallel_mapi_array ?pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indexed ?pool ?chunk ~n (fun i -> out.(i) <- Some (f i arr.(i)));
    Array.map Option.get out
  end

let parallel_map_array ?pool ?chunk f arr =
  parallel_mapi_array ?pool ?chunk (fun _ x -> f x) arr

let parallel_map ?pool ?chunk f l =
  match l with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ -> Array.to_list (parallel_map_array ?pool ?chunk f (Array.of_list l))
