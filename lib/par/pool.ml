(* A fixed-size pool of worker domains (OCaml 5 [Domain] + [Mutex] /
   [Condition], no external dependencies) with deterministic fork-join
   fan-out.  Jobs are index ranges over an array of slots, so results land
   in submission order no matter which worker runs them.

   The submitting domain *helps*: after enqueueing its chunks it drains the
   shared queue alongside the workers, so a pool of [size] workers uses
   [size + 1] cores during a [parallel_map] and a machine with one core
   still makes progress.  Calls made from inside a worker (nested
   parallelism) run sequentially instead of deadlocking on the fixed pool.

   Supervision: [supervised_map] isolates per-task failures (index,
   message, backtrace), retries with deterministic backoff, applies
   cooperative per-task timeouts, survives injected worker-domain crashes
   by respawning replacements, and degrades to sequential execution when
   domains cannot spawn at all.  Simulated faults (hangs, crashes) come
   from the active [Vfault] plan, keyed by task — never by worker — so
   outcomes are byte-identical across worker counts. *)

type t = {
  size : int;
  jobs : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled when jobs are enqueued or stopping *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable alive : int;  (* workers still draining the queue *)
  mutable degraded : bool;  (* Domain.spawn failed: run inline instead *)
}

exception Task_failed of { index : int; exn : exn; backtrace : string }

(* Set in every worker domain: parallel entry points called from a worker
   fall back to sequential execution rather than blocking on a queue that
   only this very worker could drain. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Global kill-switch used by the benchmarks to time the serial baseline. *)
let sequential_flag = Atomic.make false

let set_sequential b = Atomic.set sequential_flag b
let sequential () = Atomic.get sequential_flag

(* --- supervision statistics (process-wide) ------------------------------- *)

type stats = {
  st_crashes : int;  (* injected worker-domain crashes observed *)
  st_respawned : int;  (* replacement workers spawned *)
  st_timeouts : int;  (* tasks cancelled at their deadline *)
  st_retries : int;  (* task re-executions after a failure *)
  st_failures : int;  (* tasks that exhausted their retry budget *)
  st_degraded : int;  (* fan-outs that fell back to sequential *)
}

let crashes = Atomic.make 0
let respawned = Atomic.make 0
let timeouts = Atomic.make 0
let retried = Atomic.make 0
let failures = Atomic.make 0
let degraded_runs = Atomic.make 0

let stats () =
  { st_crashes = Atomic.get crashes;
    st_respawned = Atomic.get respawned;
    st_timeouts = Atomic.get timeouts;
    st_retries = Atomic.get retried;
    st_failures = Atomic.get failures;
    st_degraded = Atomic.get degraded_runs }

let reset_stats () =
  List.iter
    (fun a -> Atomic.set a 0)
    [ crashes; respawned; timeouts; retried; failures; degraded_runs ]

(* --- worker lifecycle ----------------------------------------------------- *)

let take_job pool =
  Mutex.lock pool.mutex;
  let rec next () =
    match Queue.take_opt pool.jobs with
    | Some j -> Some j
    | None ->
        if pool.stopping then None
        else begin
          Condition.wait pool.nonempty pool.mutex;
          next ()
        end
  in
  let job = next () in
  Mutex.unlock pool.mutex;
  job

(* A job that raises [Vfault.Inject.Injected_crash] past its own
   accounting kills the worker running it: the loop exits and the domain
   terminates, exactly like a real crashed worker.  Any other escaped
   exception is a bug in the job wrapper, but must not take the whole
   process down, so it also just ends the worker. *)
let rec worker_loop pool =
  match take_job pool with
  | None -> ()
  | Some job -> (
      match job () with
      | () -> worker_loop pool
      | exception _ ->
          Mutex.lock pool.mutex;
          pool.alive <- pool.alive - 1;
          Mutex.unlock pool.mutex)

let spawn_worker pool =
  Domain.spawn (fun () ->
      Domain.DLS.set in_worker true;
      worker_loop pool)

let create ~size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let pool =
    { size; jobs = Queue.create (); mutex = Mutex.create ();
      nonempty = Condition.create (); stopping = false; workers = [];
      alive = 0; degraded = false }
  in
  (try
     for _ = 1 to size do
       let w = spawn_worker pool in
       pool.workers <- w :: pool.workers;
       pool.alive <- pool.alive + 1
     done
   with _ ->
     (* The runtime refused to spawn (more) domains.  Whatever workers did
        start still serve; with zero the pool runs everything inline. *)
     if pool.alive = 0 then pool.degraded <- true);
  pool

(* Replace workers lost to (injected) crashes before a fan-out.  If the
   runtime cannot spawn replacements the pool keeps whatever is alive and,
   at zero, degrades to inline execution. *)
let ensure_workers pool =
  Mutex.lock pool.mutex;
  let missing = pool.size - pool.alive in
  if missing > 0 && not pool.stopping then begin
    (try
       for _ = 1 to missing do
         let w = spawn_worker pool in
         pool.workers <- w :: pool.workers;
         pool.alive <- pool.alive + 1;
         Atomic.incr respawned
       done
     with _ -> if pool.alive = 0 then pool.degraded <- true)
  end;
  Mutex.unlock pool.mutex

let size pool = pool.size

let alive_workers pool =
  Mutex.lock pool.mutex;
  let n = pool.alive in
  Mutex.unlock pool.mutex;
  n

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopping <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  pool.alive <- 0

(* --- the shared default pool -------------------------------------------- *)

let default_pool = ref None
let default_lock = Mutex.create ()

let parse_jobs s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "must be a positive integer, got %d" n)
  | None -> Error (Printf.sprintf "malformed integer %S" s)

let jobs_warned = ref false

let jobs_override () =
  match Sys.getenv_opt "VECMODEL_JOBS" with
  | None -> None
  | Some s -> (
      match parse_jobs s with
      | Ok n -> Some n
      | Error e ->
          if not !jobs_warned then begin
            jobs_warned := true;
            Printf.eprintf
              "vecmodel: ignoring VECMODEL_JOBS (%s); using the default \
               worker count\n%!"
              e
          end;
          None)

let default_size () =
  match jobs_override () with
  | Some n -> n
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* On a single-core host a worker domain adds cross-domain GC
   synchronisation without adding any parallelism, so fan-outs that would
   use the shared default pool run inline instead.  An explicit [?pool]
   argument or a [VECMODEL_JOBS] override still goes through the queue. *)
let inline_default () =
  jobs_override () = None && Domain.recommended_domain_count () < 2

let default () =
  Mutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~size:(default_size ()) in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_lock;
  pool

(* --- fork-join fan-out ---------------------------------------------------- *)

(* Inclusive index ranges covering [0, n), [chunk] indices each. *)
let ranges ~n ~chunk =
  let rec go lo acc =
    if lo >= n then List.rev acc
    else go (lo + chunk) ((lo, min (lo + chunk) n - 1) :: acc)
  in
  go 0 []

(* Join-point hook: run by the *submitting* domain after every fan-out
   barrier ([run_indexed] and each [supervised_map] call), before task
   failures are re-raised.  This library cannot see the execution
   runtime, so consistency checks over state shared across workers (the
   sanitizer's master-buffer verification) are installed from above; an
   exception from the hook propagates to the submitter.  The hook must be
   cheap when idle and safe to call from any domain. *)
let join_check : (unit -> unit) option Atomic.t = Atomic.make None

let set_join_check f = Atomic.set join_check (Some f)
let clear_join_check () = Atomic.set join_check None

let run_join_check () =
  match Atomic.get join_check with Some f -> f () | None -> ()

(* Record the failure with the smallest task index: first-by-index is
   stable across worker counts and chunkings, first-observed is not. *)
let record_failure slot i e bt =
  match !slot with
  | Some (j, _, _) when j <= i -> ()
  | _ -> slot := Some (i, e, bt)

let run_indexed ?pool ?chunk ~n compute =
  if n > 0 then begin
    let first_exn = ref None in
    let finish () =
      (* Join point: corruption of shared state is attributed here, ahead
         of any individual task failure it may have caused. *)
      run_join_check ();
      match !first_exn with
      | Some (index, exn, backtrace) ->
          raise (Task_failed { index; exn; backtrace })
      | None -> ()
    in
    let inline_pool_degraded =
      match pool with Some p -> p.degraded | None -> false
    in
    if sequential () || Domain.DLS.get in_worker
       || (Option.is_none pool && inline_default ())
       || inline_pool_degraded
    then begin
      for i = 0 to n - 1 do
        try compute i
        with e -> record_failure first_exn i e (Printexc.get_backtrace ())
      done;
      finish ()
    end
    else begin
      let pool = match pool with Some p -> p | None -> default () in
      if pool.degraded then begin
        for i = 0 to n - 1 do
          try compute i
          with e -> record_failure first_exn i e (Printexc.get_backtrace ())
        done;
        finish ()
      end
      else begin
        ensure_workers pool;
        let chunk =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 (n / ((pool.size + 1) * 4))
        in
        let ranges = ranges ~n ~chunk in
        let m = Mutex.create () in
        let finished = Condition.create () in
        let remaining = ref (List.length ranges) in
        let job (lo, hi) () =
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock m;
              decr remaining;
              if !remaining = 0 then Condition.broadcast finished;
              Mutex.unlock m)
            (fun () ->
              for i = lo to hi do
                try compute i
                with e ->
                  let bt = Printexc.get_backtrace () in
                  Mutex.lock m;
                  record_failure first_exn i e bt;
                  Mutex.unlock m
              done)
        in
        Mutex.lock pool.mutex;
        List.iter (fun r -> Queue.add (job r) pool.jobs) ranges;
        Condition.broadcast pool.nonempty;
        Mutex.unlock pool.mutex;
        (* Help: drain the queue until empty, then wait for our last chunks
           (which another worker may still be running). *)
        let rec help () =
          Mutex.lock pool.mutex;
          let j = Queue.take_opt pool.jobs in
          Mutex.unlock pool.mutex;
          match j with
          | Some j ->
              j ();
              help ()
          | None -> ()
        in
        help ();
        Mutex.lock m;
        while !remaining > 0 do
          Condition.wait finished m
        done;
        Mutex.unlock m;
        finish ()
      end
    end
  end

let parallel_mapi_array ?pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run_indexed ?pool ?chunk ~n (fun i -> out.(i) <- Some (f i arr.(i)));
    Array.map Option.get out
  end

let parallel_map_array ?pool ?chunk f arr =
  parallel_mapi_array ?pool ?chunk (fun _ x -> f x) arr

let parallel_map ?pool ?chunk f l =
  match l with
  | [] -> []
  | [ x ] -> (
      try [ f x ]
      with e ->
        let backtrace = Printexc.get_backtrace () in
        raise (Task_failed { index = 0; exn = e; backtrace }))
  | _ -> Array.to_list (parallel_map_array ?pool ?chunk f (Array.of_list l))

(* --- supervised fan-out ---------------------------------------------------

   One job per task (tasks on this path are heavyweight: a full sample
   build), retried for up to [retries] extra attempts.  Between rounds the
   submitter sleeps a deterministic exponential backoff and replaces any
   worker domain lost to a crash.  Timeouts are cooperative: genuine
   compute in this simulated system cannot hang, so the only blocking
   primitive — the injected hang — sleeps in slices and honours the
   task's deadline by raising [Task_timeout], which cancels the task
   without abandoning the worker. *)

type failure = {
  f_index : int;
  f_attempts : int;
  f_error : string;
  f_backtrace : string;
}

exception Task_timeout of float

(* Cap on *real* seconds slept per simulated hang, so fault-heavy test
   runs stay fast while nominal durations still drive the timeout logic. *)
let hang_real_cap = 0.02

type 'b slot =
  | Pending
  | Done of 'b
  | Crashed of int (* attempts so far *)
  | Failed of failure

let supervised_map ?pool ?(retries = 2) ?timeout_s ?(backoff_s = 0.0)
    ?(task_key = string_of_int) f inputs =
  let arr = Array.of_list inputs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let slots = Array.make n Pending in
    let slot_mutex = Mutex.create () in
    let set i v =
      Mutex.lock slot_mutex;
      slots.(i) <- v;
      Mutex.unlock slot_mutex
    in
    (* Runs task [i] for the given attempt and stores the outcome.
       Returns [true] when a simulated crash must also kill the calling
       worker domain (the side effect is applied by the caller, which
       knows whether it is a worker). *)
    let run_one ~attempt i =
      let key = Printf.sprintf "%s#%d" (task_key i) attempt in
      try
        (* Hang before crash: an execution can stall and *then* take its
           worker down, which is also what keeps crashing executions on
           worker domains long enough for supervision to be observable. *)
        (match Vfault.Inject.pool_hang ~key with
         | Some dur -> (
             match timeout_s with
             | Some deadline when dur > deadline ->
                 (* The task would still be hung at its deadline: the
                    supervisor cancels it.  Sleep the (capped) deadline
                    to keep the wall-clock shape honest. *)
                 Unix.sleepf (Float.min deadline hang_real_cap);
                 raise (Task_timeout dur)
             | _ -> Unix.sleepf (Float.min dur hang_real_cap))
         | None -> ());
        if Vfault.Inject.pool_crash ~key then begin
          Atomic.incr crashes;
          set i (Crashed attempt);
          true
        end
        else begin
          set i (Done (f arr.(i)));
          false
        end
      with
        | Task_timeout dur ->
            Atomic.incr timeouts;
            set i
              (Failed
                 { f_index = i; f_attempts = attempt + 1;
                   f_error =
                     Printf.sprintf
                       "timed out after %gs (simulated hang of %gs)"
                       (Option.value ~default:0.0 timeout_s) dur;
                   f_backtrace = "" });
            false
        | Vfault.Inject.Injected_crash _ ->
            Atomic.incr crashes;
            set i (Crashed attempt);
            true
        | e ->
            let bt = Printexc.get_backtrace () in
            set i
              (Failed
                 { f_index = i; f_attempts = attempt + 1;
                   f_error = Printexc.to_string e; f_backtrace = bt });
            false
    in
    let pending () =
      let l = ref [] in
      Mutex.lock slot_mutex;
      for i = n - 1 downto 0 do
        match slots.(i) with
        | Pending -> l := (i, 0) :: !l
        | Crashed a -> l := (i, a + 1) :: !l
        | Failed fl -> l := (i, fl.f_attempts) :: !l
        | Done _ -> ()
      done;
      Mutex.unlock slot_mutex;
      !l
    in
    let run_round_inline tasks =
      List.iter (fun (i, attempt) -> ignore (run_one ~attempt i)) tasks
    in
    let run_round_pool pool tasks =
      ensure_workers pool;
      if alive_workers pool = 0 then begin
        Atomic.incr degraded_runs;
        run_round_inline tasks
      end
      else begin
        let m = Mutex.create () in
        let finished = Condition.create () in
        let remaining = ref (List.length tasks) in
        let job (i, attempt) () =
          let kill_worker = ref false in
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock m;
              decr remaining;
              if !remaining = 0 then Condition.broadcast finished;
              Mutex.unlock m;
              if !kill_worker && Domain.DLS.get in_worker then
                raise (Vfault.Inject.Injected_crash (task_key i)))
            (fun () -> kill_worker := run_one ~attempt i)
        in
        Mutex.lock pool.mutex;
        List.iter (fun t -> Queue.add (job t) pool.jobs) tasks;
        Condition.broadcast pool.nonempty;
        Mutex.unlock pool.mutex;
        let rec help () =
          Mutex.lock pool.mutex;
          let j = Queue.take_opt pool.jobs in
          Mutex.unlock pool.mutex;
          match j with
          | Some j ->
              (try j ()
               with Vfault.Inject.Injected_crash _ ->
                 (* The submitting domain is not a worker: the crash was
                    already recorded, only the domain-death side effect is
                    dropped. *)
                 ());
              help ()
          | None -> ()
        in
        help ();
        Mutex.lock m;
        while !remaining > 0 do
          Condition.wait finished m
        done;
        Mutex.unlock m
      end
    in
    let inline_only =
      sequential () || Domain.DLS.get in_worker
      || (Option.is_none pool && inline_default ())
    in
    let pool =
      if inline_only then None
      else
        let p = match pool with Some p -> p | None -> default () in
        if p.degraded then begin
          Atomic.incr degraded_runs;
          None
        end
        else Some p
    in
    let rec rounds attempt =
      let tasks = pending () in
      if tasks <> [] && attempt <= retries then begin
        if attempt > 0 then begin
          List.iter (fun _ -> Atomic.incr retried) tasks;
          if backoff_s > 0.0 then
            Unix.sleepf (backoff_s *. (2.0 ** float_of_int (attempt - 1)))
        end;
        (match pool with
        | Some p -> run_round_pool p tasks
        | None -> run_round_inline tasks);
        rounds (attempt + 1)
      end
    in
    rounds 0;
    run_join_check ();
    Array.to_list
      (Array.mapi
         (fun i slot ->
           match slot with
           | Done v -> Ok v
           | Failed fl ->
               Atomic.incr failures;
               Error fl
           | Crashed a ->
               Atomic.incr failures;
               Error
                 { f_index = i; f_attempts = a + 1;
                   f_error = "worker domain crashed (injected)";
                   f_backtrace = "" }
           | Pending ->
               (* Unreachable: every round attempts all pending tasks. *)
               Atomic.incr failures;
               Error
                 { f_index = i; f_attempts = 0; f_error = "task never ran";
                   f_backtrace = "" })
         slots)
  end
