(** The daemon transport: a single select loop serving newline-delimited
    JSON over a Unix-domain or loopback TCP socket, batching decoded
    requests through {!Vpar.Pool.supervised_map} so worker-domain faults
    ([pool.*] injection) surface as retries and explicit [dropped]
    answers, never lost requests.

    Crash-only: periodic journal checkpoints (see {!Engine}) are the only
    durability mechanism, so a [kill -9] loses at most the counters since
    the last checkpoint; SIGTERM/SIGINT and the protocol [shutdown] op
    flush the journal before exiting. *)

type transport = Unix_path of string | Tcp of int

val transport_to_string : transport -> string

(** Serve until a [shutdown] request or termination signal arrives.
    Prints one startup line on stdout ("fresh" or "resumed" with the
    replayed request count — the crash-restart check greps for it) and
    one stop line on exit.  [max_batch] (default 64) bounds how many
    parsed requests are in flight per fan-out; arrivals beyond the
    engine's queue limit are rejected with [overload]. *)
val run :
  ?pool:Vpar.Pool.t -> ?max_batch:int -> engine:Engine.t -> transport -> unit
