(** The serving engine: the request pipeline behind the daemon and the
    loadtest simulation, independent of any transport.

    A request flows parse -> decision (feature extraction + model
    prediction, or the baseline fallback) -> diagnostics (lint), under a
    cooperative {e virtual} deadline: stages charge nominal virtual costs
    (plus any injected [serve.slow] seconds), and when the budget runs
    out after the decision the response is partial — the decision without
    diagnostics — rather than late or lost.  Admission control (queue
    bound, per-client token buckets), per-stage circuit breakers and
    injected [serve.{drop,slow,reject}] faults all answer explicitly:
    every request gets exactly one response. *)

type config = {
  features : Costmodel.Linmodel.feature_kind;  (** served feature schema *)
  machine : Vmachine.Descr.t;
  n : int;  (** problem size for analysis-dependent features *)
  queue_limit : int;  (** admission bound on queued requests *)
  deadline_s : float;  (** virtual seconds per request *)
  rate : float;  (** per-client tokens per virtual second; <= 0 = off *)
  burst : float;
  breaker_threshold : int;  (** consecutive stage faults before opening *)
  breaker_cooldown : int;  (** requests an open breaker stays open *)
  journal_path : string option;  (** serving-stats journal for crash-only restart *)
  journal_every : int;  (** answered requests between journal checkpoints *)
  model_path : string option;  (** initial model; [None] serves the baseline *)
}

(** neon-a57, cert features, n = 32000, queue 64, 20ms virtual deadline,
    200 tokens/s burst 50, breaker 5/8, journal every 32, no journal, no
    model (baseline). *)
val default_config : config

(** Cumulative serving counters.  In sequential use every request is
    counted exactly once, so
    [received = answered + rejected_overload + rejected_rate +
     rejected_bad + deadline_errors + dropped + internal_errors]. *)
type stats = {
  received : int;
  answered : int;  (** ok responses, including degraded and partial *)
  rejected_overload : int;  (** queue full or injected admission reject *)
  rejected_rate : int;
  rejected_bad : int;  (** malformed requests, unknown kernels/machines *)
  deadline_errors : int;  (** budget exhausted before a decision *)
  dropped : int;  (** all attempts lost; answered with [E_dropped] *)
  partials : int;  (** answered without diagnostics (deadline) *)
  degraded_baseline : int;  (** fitted model unusable; baseline answered *)
  degraded_lint_skipped : int;  (** analysis breaker open; lint skipped *)
  internal_errors : int;
}

val stats_names : string list
val stats_to_list : stats -> (string * int) list

type t

(** Build an engine.  When [config.journal_path] names an existing
    serving journal its counters are replayed (crash-only restart); when
    [config.model_path] is set the model is loaded and validated, and a
    rejected model leaves the engine serving the baseline (the error is
    returned by {!startup_error}). *)
val create : config -> t

val config : t -> config
val slot : t -> Modelslot.t

(** [Some message] when the configured initial model was rejected. *)
val startup_error : t -> string option

(** Whether {!create} replayed counters from an existing journal. *)
val resumed : t -> bool

val stats : t -> stats

(** Handle one request.  [now] is the virtual arrival time (drives token
    buckets and the deadline); [queue_depth] is the caller's current
    queue occupancy, checked against [queue_limit].  Returns the response
    and the virtual service seconds consumed.  Never raises. *)
val handle :
  t -> ?now:float -> ?queue_depth:int -> Proto.request -> Proto.response * float

(** Decode, handle and encode one wire line.  The [bool] is true when the
    line was a shutdown request (the transport decides what to do with
    it).  Never raises. *)
val handle_line :
  t -> ?now:float -> ?queue_depth:int -> client:string -> string ->
  string * bool

(** Persist the serving counters to the journal now (no-op without a
    journal).  Called by transports on clean shutdown; crash-only
    restarts rely on the periodic checkpoints instead. *)
val checkpoint : t -> unit

(** Breaker states as [(stage, state, trips)], for health reporting. *)
val breaker_states : t -> (string * string * int) list

(** The health payload also served to [op = health] requests. *)
val health_payload : t -> (string * Jsonv.t) list
