(** Per-stage circuit breakers.  A breaker counts consecutive failures of
    one serving stage; at the threshold it opens and the engine serves a
    degraded answer instead of exercising the faulty stage.  Time is the
    request counter, not a clock: after [cooldown] further requests the
    breaker goes half-open and lets one probe through — success closes
    it, failure re-opens it for another cooldown.  Deterministic given
    the request sequence. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

(** [threshold] consecutive failures open the breaker (default 5);
    [cooldown] requests later it half-opens (default 8). *)
val create : ?threshold:int -> ?cooldown:int -> name:string -> unit -> t

val name : t -> string

(** The state as of request counter [tick]. *)
val state : t -> tick:int -> state

(** Whether the stage may run at [tick]: [true] when closed, or when
    half-open (the probe).  [false] = serve the degraded path. *)
val allow : t -> tick:int -> bool

(** Record the stage outcome at [tick]. *)
val success : t -> unit

val failure : t -> tick:int -> unit

(** Times this breaker transitioned closed -> open. *)
val trips : t -> int
