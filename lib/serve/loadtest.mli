(** Load testing the serving tier.

    [run_sim] drives an in-process {!Engine.t} through a deterministic
    virtual-time simulation: seeded exponential arrivals, a FIFO queue in
    front of [servers] virtual servers, admission against the engine's
    queue limit, and latencies measured on the virtual clock.  Because no
    wall time enters, the result — including the p50/p99 — is
    byte-identical across machines and worker counts, which is what lets
    [bench json] publish SERVE rows and lets CI pin a seeded chaos run.

    [run_socket] is the real client for a running daemon: it floods the
    socket with the same request mix, matches responses by id and reports
    wall-clock latencies plus the zero-lost check. *)

type result = {
  lt_sent : int;
  lt_answered : int;  (** ok responses, degraded and partial included *)
  lt_rejected : int;  (** explicit rejections of any code *)
  lt_degraded : int;  (** answered carrying degraded tags *)
  lt_partials : int;  (** answered tagged ["no-diagnostics"] *)
  lt_dropped : int;  (** explicit [dropped] rejections *)
  lt_deadline : int;  (** explicit [deadline] rejections *)
  lt_overload : int;  (** [overload] + [rate_limited] rejections *)
  lt_p50 : float;  (** median sojourn (queue + service), seconds *)
  lt_p99 : float;
  lt_qps : float;  (** answered per second of makespan *)
  lt_makespan : float;
  lt_max_queue : int;  (** peak queue occupancy observed *)
  lt_digests : string list;  (** distinct model digests seen in answers *)
  lt_injected : (string * int) list;
      (** [serve.*] / [pool.*] injection counters observed during the run *)
}

val result_to_json : result -> string

(** Human-readable multi-line summary. *)
val result_to_string : result -> string

(** Deterministic virtual-time simulation against a fresh engine built
    from [config].  [seed] drives arrivals and the request mix;
    [arrival_rate] is requests per virtual second across [servers]
    virtual servers. *)
val run_sim :
  ?seed:int -> ?requests:int -> ?servers:int -> ?arrival_rate:float ->
  config:Engine.config -> unit -> result

(** The chaos gate.  [Ok ()] when every request is accounted for
    (sent = answered + rejected), the virtual p99 stays under
    [p99_bound], and — when [expect_degraded] — at least one answer was
    served in a degraded mode (tagged or partial).  [Error] lists every
    violated condition. *)
val gate :
  ?p99_bound:float -> ?expect_degraded:bool -> result ->
  (unit, string list) Stdlib.result

(** Socket client mode: send [requests] requests to a daemon, read until
    every id is answered or [timeout_s] expires, then return the tally
    (latencies are wall-clock; determinism is not promised).  [shutdown]
    sends a shutdown op after the stream.  [Error] on connection failure
    or lost (unanswered) requests. *)
val run_socket :
  ?seed:int -> ?requests:int -> ?timeout_s:float -> ?shutdown:bool ->
  Server.transport -> (result, string) Stdlib.result
