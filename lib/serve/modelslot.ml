(* The served model slot.

   Readers take the whole [loaded] record from one [Atomic.get], so a
   request is served end-to-end by exactly one model generation even
   while a reload swaps the slot mid-stream; the digest in each response
   attributes it to that generation.  Reload validates the candidate
   completely (parse, target, feature-schema compatibility) before the
   swap, so the slot never holds a model that could mispredict silently
   against the server's configured feature set. *)

open Costmodel

type loaded = {
  model : Linmodel.t option;
  digest : string;
  origin : string;
  generation : int;
}

type reload_error =
  | Re_read of string
  | Re_parse of string
  | Re_incompatible of Linmodel.mismatch
  | Re_target of string

let reload_error_to_string = function
  | Re_read m -> "cannot read model: " ^ m
  | Re_parse m -> "cannot parse model: " ^ m
  | Re_incompatible mm -> Linmodel.mismatch_to_string mm
  | Re_target m -> m

type t = {
  features : Linmodel.feature_kind;
  slot : loaded Atomic.t;
  reloads : int Atomic.t;
  rejected : int Atomic.t;
}

let baseline = { model = None; digest = "baseline"; origin = "baseline"; generation = 0 }

let create ~features () =
  { features; slot = Atomic.make baseline; reloads = Atomic.make 0;
    rejected = Atomic.make 0 }

let features t = t.features
let current t = Atomic.get t.slot
let reloads t = Atomic.get t.reloads
let rejected t = Atomic.get t.rejected

let model_digest m = Digest.to_hex (Digest.string (Linmodel.to_string m))

let validate t ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error (Re_read m)
  | exception e -> Error (Re_read (Printexc.to_string e))
  | contents -> (
      match Linmodel.of_string contents with
      | Error m -> Error (Re_parse m)
      | Ok m when m.Linmodel.target <> Linmodel.Speedup ->
          Error
            (Re_target
               "cost-target model cannot serve vector predictions \
                (speedup-target required)")
      | Ok m -> (
          match Linmodel.compat ~features:t.features m with
          | Error mm -> Error (Re_incompatible mm)
          | Ok () -> Ok m))

let reload t ~path =
  match validate t ~path with
  | Error e ->
      Atomic.incr t.rejected;
      Error e
  | Ok m ->
      (* Compare-and-swap loop: generation numbers stay monotone even if
         two admins race a reload. *)
      let rec swap () =
        let old = Atomic.get t.slot in
        let next =
          { model = Some m; digest = model_digest m; origin = path;
            generation = old.generation + 1 }
        in
        if Atomic.compare_and_set t.slot old next then next else swap ()
      in
      let next = swap () in
      Atomic.incr t.reloads;
      Ok next
