(** The serving protocol's JSON values: a small total parser and printer
    for newline-delimited JSON.  Parsing never raises — malformed input,
    over-deep nesting and truncated literals all come back as [Error] —
    because every byte here arrives from an untrusted socket. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact one-line rendering.  Strings are escaped so the output never
    contains a raw newline or control byte; non-ASCII bytes pass through
    unchanged (the line framing is byte-oriented).  Non-finite numbers
    render as [null]: NaN must not escape into the protocol. *)
val to_string : t -> string

(** Parse one JSON value; trailing garbage after the value is an error.
    Nesting deeper than [max_depth] is rejected. *)
val parse : string -> (t, string) result

val max_depth : int

(** {2 Accessors} — all total. *)

(** Object member lookup (first match). *)
val member : string -> t -> t option

val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option
val list : t -> t list option

(** [mem_str "op" v] = member then {!str}. *)
val mem_str : string -> t -> string option

val mem_num : string -> t -> float option
val mem_int : string -> t -> int option
