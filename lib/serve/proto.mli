(** The serving wire protocol: newline-delimited JSON requests and
    responses.  One request per line, one response per line, matched by
    [id]; decoding is total (malformed input is a typed protocol error,
    never an exception escaping the serving loop). *)

(** A request as decoded from one line. *)
type op =
  | Predict of {
      kernel : string;
      machine : string option;  (** default: the server's machine *)
      vf : int option;  (** default: the machine's natural VF *)
    }
  | Lint of { kernel : string }
  | Certify of { kernel : string; vf : int option }
  | Health
  | Stats
  | Reload of { path : string }
  | Shutdown  (** flush the journal and stop the daemon *)

type request = { rq_id : string; rq_client : string; rq_op : op }

(** Typed rejection/failure codes; the wire form is {!error_code_to_string}. *)
type error_code =
  | E_bad_request  (** malformed JSON, missing fields, oversized line *)
  | E_unknown_kernel
  | E_unknown_machine
  | E_overload  (** queue full: admission control rejected the request *)
  | E_rate_limited  (** the client's token bucket is empty *)
  | E_deadline  (** the cooperative deadline expired before a decision *)
  | E_dropped  (** every attempt's work was lost; reported, never silent *)
  | E_reload_failed
  | E_internal

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

(** A response: the request id, either a payload object or a typed error,
    plus the degraded-mode tags that applied (e.g. ["baseline-model"],
    ["lint-skipped"], ["no-diagnostics"]). *)
type response = {
  rs_id : string;
  rs_result : ((string * Jsonv.t) list, error_code * string) result;
  rs_degraded : string list;
}

(** Hard cap on one request line; longer lines are answered with
    [E_bad_request] and discarded unparsed. *)
val max_line_bytes : int

val request_to_line : request -> string

(** Decode one line.  [Error (code, msg)] carries the id when one could
    be recovered from the malformed object (so the client can match the
    rejection), else [""]. *)
val request_of_line : string -> (request, string * error_code * string) result

val response_to_line : response -> string
val response_of_line : string -> (response, string) result

val ok : id:string -> ?degraded:string list -> (string * Jsonv.t) list -> response
val error : id:string -> ?degraded:string list -> error_code -> string -> response
