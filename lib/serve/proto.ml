(* The serving wire protocol.

   Requests and responses are newline-delimited JSON objects matched by
   [id].  Decoding is strict about shape (unknown ops, missing fields and
   wrong types are [E_bad_request]) but total: no input line, however
   malformed, raises out of this module. *)

type op =
  | Predict of { kernel : string; machine : string option; vf : int option }
  | Lint of { kernel : string }
  | Certify of { kernel : string; vf : int option }
  | Health
  | Stats
  | Reload of { path : string }
  | Shutdown

type request = { rq_id : string; rq_client : string; rq_op : op }

type error_code =
  | E_bad_request
  | E_unknown_kernel
  | E_unknown_machine
  | E_overload
  | E_rate_limited
  | E_deadline
  | E_dropped
  | E_reload_failed
  | E_internal

let error_code_to_string = function
  | E_bad_request -> "bad_request"
  | E_unknown_kernel -> "unknown_kernel"
  | E_unknown_machine -> "unknown_machine"
  | E_overload -> "overload"
  | E_rate_limited -> "rate_limited"
  | E_deadline -> "deadline"
  | E_dropped -> "dropped"
  | E_reload_failed -> "reload_failed"
  | E_internal -> "internal"

let error_code_of_string = function
  | "bad_request" -> Some E_bad_request
  | "unknown_kernel" -> Some E_unknown_kernel
  | "unknown_machine" -> Some E_unknown_machine
  | "overload" -> Some E_overload
  | "rate_limited" -> Some E_rate_limited
  | "deadline" -> Some E_deadline
  | "dropped" -> Some E_dropped
  | "reload_failed" -> Some E_reload_failed
  | "internal" -> Some E_internal
  | _ -> None

type response = {
  rs_id : string;
  rs_result : ((string * Jsonv.t) list, error_code * string) result;
  rs_degraded : string list;
}

(* Big enough for any legitimate request (a kernel name and a path), small
   enough that a hostile client cannot balloon the line buffer. *)
let max_line_bytes = 16 * 1024

(* --- requests -------------------------------------------------------------- *)

let op_name = function
  | Predict _ -> "predict"
  | Lint _ -> "lint"
  | Certify _ -> "certify"
  | Health -> "health"
  | Stats -> "stats"
  | Reload _ -> "reload"
  | Shutdown -> "shutdown"

let request_to_line r =
  let base = [ ("id", Jsonv.Str r.rq_id); ("op", Jsonv.Str (op_name r.rq_op)) ] in
  let client =
    if r.rq_client = "" then [] else [ ("client", Jsonv.Str r.rq_client) ]
  in
  let rest =
    match r.rq_op with
    | Predict { kernel; machine; vf } ->
        (("kernel", Jsonv.Str kernel) :: Option.to_list (Option.map (fun m -> ("machine", Jsonv.Str m)) machine))
        @ Option.to_list (Option.map (fun v -> ("vf", Jsonv.Num (float_of_int v))) vf)
    | Lint { kernel } -> [ ("kernel", Jsonv.Str kernel) ]
    | Certify { kernel; vf } ->
        ("kernel", Jsonv.Str kernel)
        :: Option.to_list (Option.map (fun v -> ("vf", Jsonv.Num (float_of_int v))) vf)
    | Health | Stats | Shutdown -> []
    | Reload { path } -> [ ("path", Jsonv.Str path) ]
  in
  Jsonv.to_string (Jsonv.Obj (base @ client @ rest))

let request_of_line line =
  let err id fmt =
    Printf.ksprintf (fun m -> Error (id, E_bad_request, m)) fmt
  in
  if String.length line > max_line_bytes then
    err "" "request line over %d bytes" max_line_bytes
  else
    match Jsonv.parse line with
    | Error m -> err "" "bad JSON: %s" m
    | Ok v -> (
        let id = Option.value ~default:"" (Jsonv.mem_str "id" v) in
        let client = Option.value ~default:"" (Jsonv.mem_str "client" v) in
        let vf =
          match Jsonv.member "vf" v with
          | None -> Ok None
          | Some j -> (
              match Jsonv.int j with
              | Some n when n >= 1 && n <= 64 -> Ok (Some n)
              | _ -> Error ())
        in
        let kernel () =
          match Jsonv.mem_str "kernel" v with
          | Some k when k <> "" -> Ok k
          | _ -> Error ()
        in
        match (Jsonv.mem_str "op" v, vf) with
        | None, _ -> err id "missing op"
        | _, Error () -> err id "vf must be an integer in [1, 64]"
        | Some "predict", Ok vf -> (
            match kernel () with
            | Error () -> err id "predict needs a kernel name"
            | Ok kernel ->
                Ok
                  { rq_id = id; rq_client = client;
                    rq_op =
                      Predict { kernel; machine = Jsonv.mem_str "machine" v; vf } })
        | Some "lint", _ -> (
            match kernel () with
            | Error () -> err id "lint needs a kernel name"
            | Ok kernel -> Ok { rq_id = id; rq_client = client; rq_op = Lint { kernel } })
        | Some "certify", Ok vf -> (
            match kernel () with
            | Error () -> err id "certify needs a kernel name"
            | Ok kernel ->
                Ok { rq_id = id; rq_client = client; rq_op = Certify { kernel; vf } })
        | Some "health", _ -> Ok { rq_id = id; rq_client = client; rq_op = Health }
        | Some "stats", _ -> Ok { rq_id = id; rq_client = client; rq_op = Stats }
        | Some "reload", _ -> (
            match Jsonv.mem_str "path" v with
            | Some path when path <> "" ->
                Ok { rq_id = id; rq_client = client; rq_op = Reload { path } }
            | _ -> err id "reload needs a path")
        | Some "shutdown", _ -> Ok { rq_id = id; rq_client = client; rq_op = Shutdown }
        | Some op, _ -> err id "unknown op %S" op)

(* --- responses ------------------------------------------------------------- *)

let response_to_line r =
  let degraded =
    match r.rs_degraded with
    | [] -> []
    | tags -> [ ("degraded", Jsonv.List (List.map (fun t -> Jsonv.Str t) tags)) ]
  in
  let fields =
    match r.rs_result with
    | Ok payload ->
        (("id", Jsonv.Str r.rs_id) :: ("ok", Jsonv.Bool true) :: degraded)
        @ payload
    | Error (code, msg) ->
        ("id", Jsonv.Str r.rs_id) :: ("ok", Jsonv.Bool false)
        :: ("error", Jsonv.Str (error_code_to_string code))
        :: ("msg", Jsonv.Str msg) :: degraded
  in
  Jsonv.to_string (Jsonv.Obj fields)

let response_of_line line =
  match Jsonv.parse line with
  | Error m -> Error ("bad JSON: " ^ m)
  | Ok (Jsonv.Obj fields as v) -> (
      let id = Option.value ~default:"" (Jsonv.mem_str "id" v) in
      let degraded =
        match Jsonv.member "degraded" v with
        | Some (Jsonv.List l) -> List.filter_map Jsonv.str l
        | _ -> []
      in
      match Jsonv.member "ok" v with
      | Some (Jsonv.Bool true) ->
          let payload =
            List.filter
              (fun (k, _) -> not (List.mem k [ "id"; "ok"; "degraded" ]))
              fields
          in
          Ok { rs_id = id; rs_result = Ok payload; rs_degraded = degraded }
      | Some (Jsonv.Bool false) -> (
          let msg = Option.value ~default:"" (Jsonv.mem_str "msg" v) in
          match Option.bind (Jsonv.mem_str "error" v) error_code_of_string with
          | Some code ->
              Ok { rs_id = id; rs_result = Error (code, msg); rs_degraded = degraded }
          | None -> Error "response error code missing or unknown")
      | _ -> Error "response missing ok field")
  | Ok _ -> Error "response is not an object"

let ok ~id ?(degraded = []) payload =
  { rs_id = id; rs_result = Ok payload; rs_degraded = degraded }

let error ~id ?(degraded = []) code msg =
  { rs_id = id; rs_result = Error (code, msg); rs_degraded = degraded }
