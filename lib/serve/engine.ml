(* The serving engine.

   Transport-independent: the daemon feeds it decoded lines from a
   socket, the loadtest simulation calls [handle] directly, and both get
   identical behaviour because time is virtual — stages charge nominal
   virtual costs (plus injected [serve.slow] seconds) against the
   request's cooperative deadline, exactly like the pool's simulated
   hangs.  The invariant the chaos suite holds us to: every request gets
   exactly one explicit response — answered (possibly degraded or
   partial), or rejected with a typed error.  Nothing is silently lost.

   Pipeline order is decision-first: parse -> feature extraction ->
   prediction, then diagnostics (lint) with whatever budget remains.  A
   deadline that expires after the decision yields a partial response
   (the decision without diagnostics); before the decision, an explicit
   [E_deadline] rejection. *)

open Costmodel

type config = {
  features : Linmodel.feature_kind;
  machine : Vmachine.Descr.t;
  n : int;
  queue_limit : int;
  deadline_s : float;
  rate : float;
  burst : float;
  breaker_threshold : int;
  breaker_cooldown : int;
  journal_path : string option;
  journal_every : int;
  model_path : string option;
}

let default_config =
  {
    features = Linmodel.Cert;
    machine = Vmachine.Machines.neon_a57;
    n = Tsvc.Registry.default_n;
    queue_limit = 64;
    deadline_s = 0.02;
    rate = 200.0;
    burst = 50.0;
    breaker_threshold = 5;
    breaker_cooldown = 8;
    journal_path = None;
    journal_every = 32;
    model_path = None;
  }

(* Nominal virtual stage costs, in seconds.  These price relative stage
   weight (analysis is the expensive tail), not wall time. *)
let parse_cost = 1e-4
let extract_cost = 1e-3
let predict_cost = 5e-4
let analyze_cost = 2e-3
let certify_cost = 3e-3

(* Lost-work retries per stage, beyond the first attempt. *)
let stage_retries = 2

type stats = {
  received : int;
  answered : int;
  rejected_overload : int;
  rejected_rate : int;
  rejected_bad : int;
  deadline_errors : int;
  dropped : int;
  partials : int;
  degraded_baseline : int;
  degraded_lint_skipped : int;
  internal_errors : int;
}

let stats_names =
  [ "received"; "answered"; "rejected_overload"; "rejected_rate";
    "rejected_bad"; "deadline_errors"; "dropped"; "partials";
    "degraded_baseline"; "degraded_lint_skipped"; "internal_errors" ]

let stats_to_list s =
  [ ("received", s.received); ("answered", s.answered);
    ("rejected_overload", s.rejected_overload);
    ("rejected_rate", s.rejected_rate); ("rejected_bad", s.rejected_bad);
    ("deadline_errors", s.deadline_errors); ("dropped", s.dropped);
    ("partials", s.partials); ("degraded_baseline", s.degraded_baseline);
    ("degraded_lint_skipped", s.degraded_lint_skipped);
    ("internal_errors", s.internal_errors) ]

(* Internal mutable mirror of [stats], guarded by the engine lock. *)
type m_stats = {
  mutable m_received : int;
  mutable m_answered : int;
  mutable m_rejected_overload : int;
  mutable m_rejected_rate : int;
  mutable m_rejected_bad : int;
  mutable m_deadline_errors : int;
  mutable m_dropped : int;
  mutable m_partials : int;
  mutable m_degraded_baseline : int;
  mutable m_degraded_lint_skipped : int;
  mutable m_internal_errors : int;
  mutable m_since_checkpoint : int;
}

let m_zero () =
  { m_received = 0; m_answered = 0; m_rejected_overload = 0;
    m_rejected_rate = 0; m_rejected_bad = 0; m_deadline_errors = 0;
    m_dropped = 0; m_partials = 0; m_degraded_baseline = 0;
    m_degraded_lint_skipped = 0; m_internal_errors = 0;
    m_since_checkpoint = 0 }

type t = {
  cfg : config;
  slot : Modelslot.t;
  analyze_breaker : Breaker.t;
  extract_breaker : Breaker.t;
  predict_breaker : Breaker.t;
  buckets : Bucket.Family.t;
  m : m_stats;
  lock : Mutex.t;
  journal : Checkpoint.Journal.t option;
  mutable resumed : bool;
  mutable startup_error : string option;
}

let journal_key = "serve-stats"

let snapshot_locked m =
  { received = m.m_received; answered = m.m_answered;
    rejected_overload = m.m_rejected_overload;
    rejected_rate = m.m_rejected_rate; rejected_bad = m.m_rejected_bad;
    deadline_errors = m.m_deadline_errors; dropped = m.m_dropped;
    partials = m.m_partials; degraded_baseline = m.m_degraded_baseline;
    degraded_lint_skipped = m.m_degraded_lint_skipped;
    internal_errors = m.m_internal_errors }

let stats t =
  Mutex.lock t.lock;
  let s = snapshot_locked t.m in
  Mutex.unlock t.lock;
  s

let stats_json s =
  Jsonv.Obj
    (List.map (fun (k, v) -> (k, Jsonv.Num (float_of_int v))) (stats_to_list s))

let restore_stats m v =
  let get k = Option.value ~default:0 (Jsonv.mem_int k v) in
  m.m_received <- get "received";
  m.m_answered <- get "answered";
  m.m_rejected_overload <- get "rejected_overload";
  m.m_rejected_rate <- get "rejected_rate";
  m.m_rejected_bad <- get "rejected_bad";
  m.m_deadline_errors <- get "deadline_errors";
  m.m_dropped <- get "dropped";
  m.m_partials <- get "partials";
  m.m_degraded_baseline <- get "degraded_baseline";
  m.m_degraded_lint_skipped <- get "degraded_lint_skipped";
  m.m_internal_errors <- get "internal_errors"

let checkpoint_locked t =
  match t.journal with
  | None -> ()
  | Some j ->
      t.m.m_since_checkpoint <- 0;
      let loaded = Modelslot.current t.slot in
      let payload =
        match stats_json (snapshot_locked t.m) with
        | Jsonv.Obj fields ->
            Jsonv.Obj
              (fields
              @ [ ( "reloads",
                    Jsonv.Num (float_of_int (Modelslot.reloads t.slot)) );
                  ( "reloads_rejected",
                    Jsonv.Num (float_of_int (Modelslot.rejected t.slot)) );
                  ("model_digest", Jsonv.Str loaded.Modelslot.digest);
                  ("model_origin", Jsonv.Str loaded.Modelslot.origin);
                  ( "generation",
                    Jsonv.Num (float_of_int loaded.Modelslot.generation) ) ])
        | v -> v
      in
      Checkpoint.Journal.record j journal_key (Jsonv.to_string payload)

let checkpoint t =
  Mutex.lock t.lock;
  checkpoint_locked t;
  Mutex.unlock t.lock

let create cfg =
  let journal = Option.map Checkpoint.Journal.load cfg.journal_path in
  let m = m_zero () in
  let resumed =
    match journal with
    | None -> false
    | Some j -> (
        match Checkpoint.Journal.find j journal_key with
        | None -> false
        | Some payload -> (
            match Jsonv.parse payload with
            | Ok v ->
                restore_stats m v;
                true
            | Error _ -> false))
  in
  let mk name =
    Breaker.create ~threshold:cfg.breaker_threshold
      ~cooldown:cfg.breaker_cooldown ~name ()
  in
  let t =
    {
      cfg;
      slot = Modelslot.create ~features:cfg.features ();
      analyze_breaker = mk "analyze";
      extract_breaker = mk "extract";
      predict_breaker = mk "predict";
      buckets = Bucket.Family.create ~rate:cfg.rate ~burst:cfg.burst;
      m;
      lock = Mutex.create ();
      journal;
      resumed;
      startup_error = None;
    }
  in
  (match cfg.model_path with
  | None -> ()
  | Some path -> (
      match Modelslot.reload t.slot ~path with
      | Ok _ -> ()
      | Error e ->
          (* A bad initial model must not kill the daemon: serve the
             baseline and surface the rejection through health. *)
          t.startup_error <- Some (Modelslot.reload_error_to_string e)));
  t

let config t = t.cfg
let slot t = t.slot
let startup_error t = t.startup_error
let resumed t = t.resumed

(* --- stage runner ---------------------------------------------------------

   One stage execution: charge the nominal cost, add injected slowness,
   then run the work unless this attempt's result is injected as lost
   ([serve.drop]).  Lost attempts are retried; a stage whose every
   attempt is lost reports [`Dropped] and the request is answered with an
   explicit error.  Every faulted attempt (drop or exception) counts
   against the stage's breaker; a completed attempt resets it. *)

let run_stage ~breaker ~tick ~rq_id ~stage ~cost ~elapsed f =
  let rec attempt k =
    elapsed := !elapsed +. cost;
    let key = Printf.sprintf "%s|%s#%d" stage rq_id k in
    (match Vfault.Inject.serve_slow ~key with
    | Some extra -> elapsed := !elapsed +. extra
    | None -> ());
    if Vfault.Inject.serve_drop ~key then begin
      Breaker.failure breaker ~tick;
      if k < stage_retries then attempt (k + 1) else Error `Dropped
    end
    else
      match f () with
      | v ->
          Breaker.success breaker;
          Ok v
      | exception e ->
          Breaker.failure breaker ~tick;
          Error (`Failed (Printexc.to_string e))
  in
  attempt 0

(* --- the pipeline ---------------------------------------------------------- *)

let resolve_machine t = function
  | None -> Ok t.cfg.machine
  | Some name -> (
      match Vmachine.Machines.by_name name with
      | Some m -> Ok m
      | None -> Error name)

let resolve_kernel name =
  match Tsvc.Registry.find name with
  | Some e -> Ok e.Tsvc.Registry.kernel
  | None -> Error name

let extract_features kind ~n ~vf kernel =
  match (kind : Linmodel.feature_kind) with
  | Raw -> Feature.counts kernel
  | Rated -> Feature.rated kernel
  | Extended -> Feature.extended kernel
  | Absint -> Feature.absint ~n ~vf kernel
  | Opt -> Feature.opt ~n ~vf kernel
  | Deps -> Feature.deps ~n ~vf kernel
  | Cert -> Feature.cert ~n ~vf kernel

let baseline_speedup ~vf kernel =
  match Dataset.apply_transform Dataset.Llv ~vf kernel with
  | Some vk -> Some (Baseline.predicted_speedup vk)
  | None -> None

(* The prediction decision: the fitted model when one is loaded, its
   stage breakers are closed and it produces a finite value; the static
   baseline otherwise, tagged so clients can see the degradation.  The
   deadline is checked between stages: a budget exhausted before the
   decision exists is [`Deadline] (the request is explicitly rejected),
   never a late answer. *)
let decide t ~tick ~rq_id ~vf ~budget ~elapsed kernel =
  let loaded = Modelslot.current t.slot in
  (* A kernel the transform cannot vectorize is an honest speedup-1
     answer, not a degradation: it is reported through the [vectorized]
     payload field rather than a degraded tag. *)
  let baseline tags =
    match baseline_speedup ~vf kernel with
    | Some s -> Ok (Float.max 0.0 s, loaded, tags, true)
    | None -> Ok (1.0, loaded, tags, false)
  in
  match loaded.Modelslot.model with
  | None -> baseline []
  | Some model ->
      if
        not
          (Breaker.allow t.extract_breaker ~tick
          && Breaker.allow t.predict_breaker ~tick)
      then baseline [ "baseline-model" ]
      else
        let feats =
          run_stage ~breaker:t.extract_breaker ~tick ~rq_id ~stage:"extract"
            ~cost:extract_cost ~elapsed (fun () ->
              extract_features t.cfg.features ~n:t.cfg.n ~vf kernel)
        in
        match feats with
        | Error e -> Error e
        | Ok _ when !elapsed > budget -> Error `Deadline
        | Ok feats -> (
            let pred =
              run_stage ~breaker:t.predict_breaker ~tick ~rq_id ~stage:"predict"
                ~cost:predict_cost ~elapsed (fun () ->
                  let v = Linmodel.predict_vec model feats in
                  (* A poisoned or degenerate model is a stage fault: it
                     trips the predict breaker and this request falls back
                     to the baseline. *)
                  if not (Float.is_finite v) then
                    failwith "non-finite prediction"
                  else v)
            in
            match pred with
            | Ok v -> Ok (Float.max 0.0 v, loaded, [], true)
            | Error `Dropped -> Error `Dropped
            | Error (`Failed _) -> baseline [ "baseline-model" ])

let diag_fields report =
  let errors = Vanalysis.Driver.error_count report in
  let diags = List.length (Vanalysis.Driver.report_diags report) in
  [ ("lint_errors", Jsonv.Num (float_of_int errors));
    ("lint_diags", Jsonv.Num (float_of_int diags)) ]

let loaded_fields (l : Modelslot.loaded) =
  [ ("model", Jsonv.Str l.digest); ("origin", Jsonv.Str l.origin);
    ("generation", Jsonv.Num (float_of_int l.generation)) ]

let breaker_states t =
  Mutex.lock t.lock;
  let tick = t.m.m_received in
  Mutex.unlock t.lock;
  List.map
    (fun b ->
      ( Breaker.name b,
        Breaker.state_to_string (Breaker.state b ~tick),
        Breaker.trips b ))
    [ t.analyze_breaker; t.extract_breaker; t.predict_breaker ]

let health_payload t =
  let s = stats t in
  let breakers = breaker_states t in
  let degraded_now =
    List.exists (fun (_, st, _) -> st <> "closed") breakers
    || t.startup_error <> None
  in
  let loaded = Modelslot.current t.slot in
  [ ("status", Jsonv.Str (if degraded_now then "degraded" else "ok"));
    ("queue_limit", Jsonv.Num (float_of_int t.cfg.queue_limit));
    ("deadline_s", Jsonv.Num t.cfg.deadline_s);
    ("features", Jsonv.Str (Linmodel.feature_kind_to_string t.cfg.features));
    ("machine", Jsonv.Str t.cfg.machine.Vmachine.Descr.name);
    ( "breakers",
      Jsonv.Obj
        (List.map
           (fun (name, st, trips) ->
             ( name,
               Jsonv.Obj
                 [ ("state", Jsonv.Str st);
                   ("trips", Jsonv.Num (float_of_int trips)) ] ))
           breakers) );
    ("reloads", Jsonv.Num (float_of_int (Modelslot.reloads t.slot)));
    ( "reloads_rejected",
      Jsonv.Num (float_of_int (Modelslot.rejected t.slot)) );
    ("resumed", Jsonv.Bool t.resumed);
    ("clients", Jsonv.Num (float_of_int (Bucket.Family.clients t.buckets)));
    ( "startup_error",
      match t.startup_error with None -> Jsonv.Null | Some m -> Jsonv.Str m );
    ("stats", stats_json s) ]
  @ loaded_fields loaded

(* --- request handling ------------------------------------------------------ *)

type outcome =
  | O_answered
  | O_overload
  | O_rate
  | O_bad
  | O_deadline
  | O_dropped
  | O_internal

let record t outcome ~partial ~tags =
  Mutex.lock t.lock;
  let m = t.m in
  (match outcome with
  | O_answered ->
      m.m_answered <- m.m_answered + 1;
      m.m_since_checkpoint <- m.m_since_checkpoint + 1;
      if partial then m.m_partials <- m.m_partials + 1;
      if List.mem "baseline-model" tags then
        m.m_degraded_baseline <- m.m_degraded_baseline + 1;
      if List.mem "lint-skipped" tags then
        m.m_degraded_lint_skipped <- m.m_degraded_lint_skipped + 1
  | O_overload -> m.m_rejected_overload <- m.m_rejected_overload + 1
  | O_rate -> m.m_rejected_rate <- m.m_rejected_rate + 1
  | O_bad -> m.m_rejected_bad <- m.m_rejected_bad + 1
  | O_deadline -> m.m_deadline_errors <- m.m_deadline_errors + 1
  | O_dropped -> m.m_dropped <- m.m_dropped + 1
  | O_internal -> m.m_internal_errors <- m.m_internal_errors + 1);
  let due =
    t.journal <> None && m.m_since_checkpoint >= t.cfg.journal_every
  in
  if due then checkpoint_locked t;
  Mutex.unlock t.lock

let handle t ?(now = 0.0) ?(queue_depth = 0) (req : Proto.request) =
  let id = req.Proto.rq_id in
  let elapsed = ref parse_cost in
  let tick =
    Mutex.lock t.lock;
    t.m.m_received <- t.m.m_received + 1;
    let v = t.m.m_received in
    Mutex.unlock t.lock;
    v
  in
  let finish outcome ~partial resp =
    record t outcome ~partial ~tags:resp.Proto.rs_degraded;
    (resp, !elapsed)
  in
  let reject outcome code msg =
    finish outcome ~partial:false (Proto.error ~id code msg)
  in
  let budget = t.cfg.deadline_s in
  let over () = !elapsed > budget in
  let client = if req.Proto.rq_client = "" then "local" else req.Proto.rq_client in
  let data_op =
    match req.Proto.rq_op with
    | Proto.Predict _ | Proto.Lint _ | Proto.Certify _ -> true
    | _ -> false
  in
  try
    (* Admission: injected spurious rejection, then the queue bound, then
       the client's token bucket.  Admin ops (health, stats, reload,
       shutdown) bypass admission so operators can always reach a
       struggling daemon. *)
    if data_op && Vfault.Inject.serve_reject ~key:(Printf.sprintf "reject|%s" id)
    then reject O_overload Proto.E_overload "injected admission rejection"
    else if data_op && queue_depth >= t.cfg.queue_limit then
      reject O_overload Proto.E_overload
        (Printf.sprintf "queue full (%d >= %d)" queue_depth t.cfg.queue_limit)
    else if data_op && not (Bucket.Family.admit t.buckets ~client ~now) then
      reject O_rate Proto.E_rate_limited
        (Printf.sprintf "client %s over rate %g/s" client t.cfg.rate)
    else
      match req.Proto.rq_op with
      | Proto.Health -> finish O_answered ~partial:false (Proto.ok ~id (health_payload t))
      | Proto.Stats ->
          finish O_answered ~partial:false
            (Proto.ok ~id
               (("stats", stats_json (stats t))
               :: ( "injected",
                    Jsonv.Obj
                      (List.map
                         (fun (k, v) -> (k, Jsonv.Num (float_of_int v)))
                         (Vfault.Inject.counts ())) )
               :: loaded_fields (Modelslot.current t.slot)))
      | Proto.Shutdown ->
          checkpoint t;
          finish O_answered ~partial:false
            (Proto.ok ~id [ ("stopping", Jsonv.Bool true) ])
      | Proto.Reload { path } -> (
          match Modelslot.reload t.slot ~path with
          | Ok loaded ->
              finish O_answered ~partial:false (Proto.ok ~id (loaded_fields loaded))
          | Error e ->
              (* The old model keeps serving; the rejection is explicit. *)
              finish O_answered ~partial:false
                (Proto.error ~id Proto.E_reload_failed
                   (Modelslot.reload_error_to_string e)))
      | Proto.Lint { kernel } -> (
          match resolve_kernel kernel with
          | Error name -> reject O_bad Proto.E_unknown_kernel name
          | Ok k -> (
              let r =
                run_stage ~breaker:t.analyze_breaker ~tick ~rq_id:id
                  ~stage:"analyze" ~cost:analyze_cost ~elapsed (fun () ->
                    Vanalysis.Driver.lint_kernel k)
              in
              match r with
              | Ok report ->
                  finish O_answered ~partial:false
                    (Proto.ok ~id
                       (("kernel", Jsonv.Str kernel) :: diag_fields report))
              | Error `Dropped ->
                  reject O_dropped Proto.E_dropped "lint work lost on every attempt"
              | Error (`Failed m) -> reject O_internal Proto.E_internal m))
      | Proto.Certify { kernel; vf } -> (
          match resolve_kernel kernel with
          | Error name -> reject O_bad Proto.E_unknown_kernel name
          | Ok k -> (
              let vf =
                match vf with
                | Some v -> v
                | None -> Vmachine.Descr.vf_for_kernel t.cfg.machine k
              in
              let r =
                run_stage ~breaker:t.analyze_breaker ~tick ~rq_id:id
                  ~stage:"certify" ~cost:certify_cost ~elapsed (fun () ->
                    Vanalysis.Cert.certify ~vf k)
              in
              match r with
              | Ok cert ->
                  finish O_answered ~partial:false
                    (Proto.ok ~id
                       [ ("kernel", Jsonv.Str kernel);
                         ("vf", Jsonv.Num (float_of_int vf));
                         ("safe_frac", Jsonv.Num (Vanalysis.Cert.safe_frac cert));
                         ("guard_free", Jsonv.Bool cert.Vanalysis.Cert.ct_guard_free) ])
              | Error `Dropped ->
                  reject O_dropped Proto.E_dropped
                    "certify work lost on every attempt"
              | Error (`Failed m) -> reject O_internal Proto.E_internal m))
      | Proto.Predict { kernel; machine; vf } -> (
          match resolve_machine t machine with
          | Error name -> reject O_bad Proto.E_unknown_machine name
          | Ok mach -> (
              match resolve_kernel kernel with
              | Error name -> reject O_bad Proto.E_unknown_kernel name
              | Ok k -> (
                  let vf =
                    match vf with
                    | Some v -> v
                    | None -> Vmachine.Descr.vf_for_kernel mach k
                  in
                  match decide t ~tick ~rq_id:id ~vf ~budget ~elapsed k with
                  | Error `Dropped ->
                      reject O_dropped Proto.E_dropped
                        "prediction work lost on every attempt"
                  | Error `Deadline ->
                      reject O_deadline Proto.E_deadline
                        (Printf.sprintf
                           "budget %.3fs exhausted before a decision" budget)
                  | Error (`Failed m) -> reject O_internal Proto.E_internal m
                  | Ok (speedup, loaded, tags, vectorized) ->
                        let base =
                          [ ("kernel", Jsonv.Str kernel);
                            ("speedup", Jsonv.Num speedup);
                            ("vf", Jsonv.Num (float_of_int vf));
                            ("vectorized", Jsonv.Bool vectorized) ]
                          @ loaded_fields loaded
                        in
                        (* Diagnostics run on the remaining budget: a
                           deadline that expired after the decision yields
                           a partial answer, an open analysis breaker the
                           lint-skipped fast path. *)
                        if over () then
                          finish O_answered ~partial:true
                            (Proto.ok ~id ~degraded:("no-diagnostics" :: tags) base)
                        else if not (Breaker.allow t.analyze_breaker ~tick) then
                          finish O_answered ~partial:false
                            (Proto.ok ~id ~degraded:("lint-skipped" :: tags) base)
                        else
                          let r =
                            run_stage ~breaker:t.analyze_breaker ~tick
                              ~rq_id:id ~stage:"analyze" ~cost:analyze_cost
                              ~elapsed (fun () ->
                                Vanalysis.Driver.lint_kernel ~vfs:[ vf ] k)
                          in
                          (match r with
                          | Ok report when not (over ()) ->
                              finish O_answered ~partial:false
                                (Proto.ok ~id ~degraded:tags
                                   (base @ diag_fields report))
                          | Ok _ ->
                              (* The lint finished but blew the budget:
                                 the decision still counts, diagnostics
                                 are withheld as stale-late. *)
                              finish O_answered ~partial:true
                                (Proto.ok ~id
                                   ~degraded:("no-diagnostics" :: tags) base)
                          | Error _ ->
                              (* Diagnostics lost or faulted: the decision
                                 is still good — answer without them. *)
                              finish O_answered ~partial:true
                                (Proto.ok ~id
                                   ~degraded:("no-diagnostics" :: tags) base)))))
  with e ->
    (* The last line of defence: no exception escapes the engine. *)
    reject O_internal Proto.E_internal (Printexc.to_string e)

let handle_line t ?now ?queue_depth ~client line =
  match Proto.request_of_line line with
  | Error (id, code, msg) ->
      Mutex.lock t.lock;
      t.m.m_received <- t.m.m_received + 1;
      Mutex.unlock t.lock;
      record t O_bad ~partial:false ~tags:[];
      (Proto.response_to_line (Proto.error ~id code msg), false)
  | Ok req ->
      let req =
        if req.Proto.rq_client = "" then { req with Proto.rq_client = client }
        else req
      in
      let resp, _ = handle t ?now ?queue_depth req in
      ( Proto.response_to_line resp,
        match req.Proto.rq_op with Proto.Shutdown -> true | _ -> false )
