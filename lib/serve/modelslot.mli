(** The served model: an atomically-swappable slot holding either the
    static baseline or a fitted {!Costmodel.Linmodel.t}, with validated
    hot reload.  A reload parses and checks the candidate completely
    before the swap — a corrupt, truncated or schema-incompatible
    checkpoint is rejected with a typed error and the old model keeps
    serving.  Every loaded model carries a content digest so responses
    can be attributed to exactly one model generation. *)

type loaded = {
  model : Costmodel.Linmodel.t option;  (** [None] = static baseline *)
  digest : string;  (** MD5 of the serialized model; ["baseline"] for none *)
  origin : string;  (** ["baseline"] or the checkpoint path *)
  generation : int;  (** 0 for the initial slot, +1 per successful reload *)
}

type reload_error =
  | Re_read of string  (** file missing or unreadable *)
  | Re_parse of string  (** not a valid model file (corrupt/truncated) *)
  | Re_incompatible of Costmodel.Linmodel.mismatch
      (** feature kind or column arity disagrees with the server's
          configured feature set *)
  | Re_target of string  (** cost-target models cannot serve predict_vec *)

val reload_error_to_string : reload_error -> string

type t

(** A slot serving the baseline until the first successful reload,
    validated against [features]. *)
val create : features:Costmodel.Linmodel.feature_kind -> unit -> t

val features : t -> Costmodel.Linmodel.feature_kind

(** The currently-served model (lock-free read). *)
val current : t -> loaded

(** Validate the checkpoint at [path] and atomically swap it in.  On
    [Error _] the slot is untouched. *)
val reload : t -> path:string -> (loaded, reload_error) result

(** Successful reloads so far. *)
val reloads : t -> int

(** Reloads rejected by validation. *)
val rejected : t -> int
