(* A small total JSON parser/printer for the serving protocol.

   Every byte parsed here arrives from an untrusted socket, so the parser
   is written to be total: malformed escapes, truncated literals,
   over-deep nesting and trailing garbage are all [Error _], never an
   exception.  The printer is the inverse on the values the protocol
   emits; it never produces a raw newline, so one value is always one
   line on the wire. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 32

(* --- printing ------------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b v =
  (* NaN/Inf must never escape into the protocol; a poisoned prediction
     is reported through the typed error path instead. *)
  if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.12g" v)
  else Buffer.add_string b "null"

let to_string v =
  let b = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num v -> add_num b v
    | Str s ->
        Buffer.add_char b '"';
        escape_into b s;
        Buffer.add_char b '"'
    | List l ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          l;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape_into b k;
            Buffer.add_string b "\":";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* --- parsing --------------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C at byte %d, got %C" c !pos c'
    | None -> fail "expected %C at byte %d, got end of input" c !pos
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at byte %d" !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape"
                   else begin
                     let hex = String.sub s !pos 4 in
                     match int_of_string_opt ("0x" ^ hex) with
                     | None -> fail "bad \\u escape %S" hex
                     | Some code ->
                         pos := !pos + 4;
                         (* Encode the code point as UTF-8; surrogates are
                            kept as replacement chars rather than crashing. *)
                         if code < 0x80 then Buffer.add_char b (Char.chr code)
                         else if code < 0x800 then begin
                           Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                         end
                         else if code >= 0xD800 && code <= 0xDFFF then
                           Buffer.add_string b "\xEF\xBF\xBD"
                         else begin
                           Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                           Buffer.add_char b
                             (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                         end
                   end
               | c -> fail "bad escape \\%C" c);
            go ()
        | c when Char.code c < 0x20 -> fail "raw control byte in string"
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some v when Float.is_finite v -> v
    | _ -> fail "bad number %S at byte %d" tok start
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' at byte %d" !pos
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' at byte %d" !pos
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at byte %d" !pos;
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m
  (* Belt and braces: any other exception is still a parse error, never a
     crash of the serving loop. *)
  | exception e -> Error (Printexc.to_string e)

(* --- accessors ------------------------------------------------------------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num v -> Some v | _ -> None

let int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e9 -> Some (int_of_float v)
  | _ -> None

let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
let mem_str k v = Option.bind (member k v) str
let mem_num k v = Option.bind (member k v) num
let mem_int k v = Option.bind (member k v) int
