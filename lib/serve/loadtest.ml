(* Load testing the serving tier.

   The simulation mode is the deterministic half: virtual-time arrivals
   (seeded exponential interarrivals), a FIFO queue in front of a few
   virtual servers, and the engine's own virtual service times.  Every
   number it reports is a pure function of (seed, config, fault plan), so
   the bench harness can publish SERVE rows that are byte-stable across
   worker counts, and CI can pin a seeded chaos run and assert its gate.

   The socket mode is the honest half: a real client against a real
   daemon, wall-clock latencies, and the zero-lost check done by matching
   response ids. *)

type result = {
  lt_sent : int;
  lt_answered : int;
  lt_rejected : int;
  lt_degraded : int;
  lt_partials : int;
  lt_dropped : int;
  lt_deadline : int;
  lt_overload : int;
  lt_p50 : float;
  lt_p99 : float;
  lt_qps : float;
  lt_makespan : float;
  lt_max_queue : int;
  lt_digests : string list;
  lt_injected : (string * int) list;
}

(* --- the request mix -------------------------------------------------------

   A fixed rotation over real TSVC kernels, mostly predicts with some
   lints and certifies mixed in, from four clients.  Pure in (seed, i). *)

let kernel_names =
  lazy
    (List.filteri (fun i _ -> i < 24) Tsvc.Registry.all
    |> List.map (fun e -> e.Tsvc.Registry.kernel.Vir.Kernel.name))

let nth_kernel i =
  let names = Lazy.force kernel_names in
  List.nth names (i mod List.length names)

let request_for i =
  let id = Printf.sprintf "r%05d" i in
  let client = Printf.sprintf "c%d" (i mod 4) in
  let op =
    if i mod 13 = 5 then Proto.Lint { kernel = nth_kernel i }
    else if i mod 17 = 7 then Proto.Certify { kernel = nth_kernel i; vf = None }
    else Proto.Predict { kernel = nth_kernel i; machine = None; vf = None }
  in
  { Proto.rq_id = id; rq_client = client; rq_op = op }

(* Seeded uniform draw, same digest construction as the fault plans. *)
let u01 ~seed key =
  let d = Digest.string (Printf.sprintf "loadtest|%d|%s" seed key) in
  let v = ref 0.0 in
  for i = 0 to 5 do
    v := (!v *. 256.0) +. float_of_int (Char.code d.[i])
  done;
  !v /. (256.0 ** 6.0)

let interarrival ~seed ~rate i =
  let u = Float.min (u01 ~seed (Printf.sprintf "arrival#%d" i)) 0.999999 in
  -.log (1.0 -. u) /. rate

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(int_of_float (Float.of_int (n - 1) *. p))

let is_injected_site (k, _) =
  String.length k > 5
  && (String.sub k 0 6 = "serve." || String.sub k 0 5 = "pool.")

let injected_delta before after =
  List.filter_map
    (fun (k, v) ->
      let v0 =
        Option.value ~default:0 (List.assoc_opt k before)
      in
      if v > v0 then Some (k, v - v0) else None)
    after
  |> List.filter is_injected_site

(* --- tallying --------------------------------------------------------------- *)

type tally = {
  mutable answered : int;
  mutable rejected : int;
  mutable degraded : int;
  mutable partials : int;
  mutable dropped : int;
  mutable deadline : int;
  mutable overload : int;
  mutable digests : string list;
  mutable sojourns : float list;
}

let tally_zero () =
  { answered = 0; rejected = 0; degraded = 0; partials = 0; dropped = 0;
    deadline = 0; overload = 0; digests = []; sojourns = [] }

let tally_response t (resp : Proto.response) ~sojourn =
  match resp.Proto.rs_result with
  | Ok payload ->
      t.answered <- t.answered + 1;
      t.sojourns <- sojourn :: t.sojourns;
      if resp.Proto.rs_degraded <> [] then t.degraded <- t.degraded + 1;
      if List.mem "no-diagnostics" resp.Proto.rs_degraded then
        t.partials <- t.partials + 1;
      (match List.assoc_opt "model" payload with
      | Some (Jsonv.Str d) when not (List.mem d t.digests) ->
          t.digests <- d :: t.digests
      | _ -> ())
  | Error (code, _) -> (
      t.rejected <- t.rejected + 1;
      match code with
      | Proto.E_dropped -> t.dropped <- t.dropped + 1
      | Proto.E_deadline -> t.deadline <- t.deadline + 1
      | Proto.E_overload | Proto.E_rate_limited ->
          t.overload <- t.overload + 1
      | _ -> ())

let finish_result ~sent ~makespan ~max_queue ~injected t =
  let sorted = Array.of_list t.sojourns in
  Array.sort compare sorted;
  {
    lt_sent = sent;
    lt_answered = t.answered;
    lt_rejected = t.rejected;
    lt_degraded = t.degraded;
    lt_partials = t.partials;
    lt_dropped = t.dropped;
    lt_deadline = t.deadline;
    lt_overload = t.overload;
    lt_p50 = percentile sorted 0.5;
    lt_p99 = percentile sorted 0.99;
    lt_qps = (if makespan > 0.0 then float_of_int t.answered /. makespan else 0.0);
    lt_makespan = makespan;
    lt_max_queue = max_queue;
    lt_digests = List.sort compare t.digests;
    lt_injected = injected;
  }

(* --- simulation ------------------------------------------------------------- *)

let run_sim ?(seed = 42) ?(requests = 400) ?(servers = 2)
    ?(arrival_rate = 300.0) ~config () =
  let engine = Engine.create config in
  let tally = tally_zero () in
  let free_at = Array.make (max 1 servers) 0.0 in
  (* Completion times of requests still in the system, for queue depth. *)
  let in_system = ref [] in
  let max_queue = ref 0 in
  let before = Vfault.Inject.counts () in
  let now = ref 0.0 in
  let last_completion = ref 0.0 in
  let first_arrival = ref None in
  for i = 0 to requests - 1 do
    now := !now +. interarrival ~seed ~rate:arrival_rate i;
    let a = !now in
    if !first_arrival = None then first_arrival := Some a;
    in_system := List.filter (fun c -> c > a) !in_system;
    let depth = max 0 (List.length !in_system - Array.length free_at) in
    max_queue := max !max_queue depth;
    let resp, service =
      Engine.handle engine ~now:a ~queue_depth:depth (request_for i)
    in
    let completion =
      match resp.Proto.rs_result with
      | Error _ -> a (* rejections are immediate; no server occupancy *)
      | Ok _ ->
          (* Earliest-free virtual server, FIFO. *)
          let k = ref 0 in
          Array.iteri (fun j t -> if t < free_at.(!k) then k := j) free_at;
          let start = Float.max a free_at.(!k) in
          let c = start +. service in
          free_at.(!k) <- c;
          in_system := c :: !in_system;
          c
    in
    last_completion := Float.max !last_completion completion;
    tally_response tally resp ~sojourn:(completion -. a)
  done;
  Engine.checkpoint engine;
  let makespan =
    match !first_arrival with
    | Some f -> Float.max 0.0 (!last_completion -. f)
    | None -> 0.0
  in
  finish_result ~sent:requests ~makespan ~max_queue:!max_queue
    ~injected:(injected_delta before (Vfault.Inject.counts ()))
    tally

(* --- rendering -------------------------------------------------------------- *)

let result_to_json r =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  let ints =
    [ ("sent", r.lt_sent); ("answered", r.lt_answered);
      ("rejected", r.lt_rejected); ("degraded", r.lt_degraded);
      ("partials", r.lt_partials); ("dropped", r.lt_dropped);
      ("deadline", r.lt_deadline); ("overload", r.lt_overload);
      ("max_queue", r.lt_max_queue) ]
  in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%d," k v))
    ints;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "\"%s\":%.6f," k v))
    [ ("p50", r.lt_p50); ("p99", r.lt_p99); ("qps", r.lt_qps);
      ("makespan", r.lt_makespan) ];
  Buffer.add_string b "\"digests\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" d))
    r.lt_digests;
  Buffer.add_string b "],\"injected\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" k v))
    r.lt_injected;
  Buffer.add_string b "}}";
  Buffer.contents b

let result_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "sent %d  answered %d  rejected %d (accounted: %s)\n"
       r.lt_sent r.lt_answered r.lt_rejected
       (if r.lt_sent = r.lt_answered + r.lt_rejected then "yes" else "NO"));
  Buffer.add_string b
    (Printf.sprintf
       "  degraded %d  partial %d  dropped %d  deadline %d  overload/rate %d\n"
       r.lt_degraded r.lt_partials r.lt_dropped r.lt_deadline r.lt_overload);
  Buffer.add_string b
    (Printf.sprintf "  p50 %.6fs  p99 %.6fs  qps %.1f  makespan %.4fs  max queue %d\n"
       r.lt_p50 r.lt_p99 r.lt_qps r.lt_makespan r.lt_max_queue);
  (match r.lt_digests with
  | [] -> ()
  | ds ->
      Buffer.add_string b
        (Printf.sprintf "  models: %s\n" (String.concat ", " ds)));
  (match r.lt_injected with
  | [] -> ()
  | inj ->
      Buffer.add_string b
        (Printf.sprintf "  injected: %s\n"
           (String.concat ", "
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) inj))));
  Buffer.contents b

(* --- the gate --------------------------------------------------------------- *)

let gate ?(p99_bound = 0.5) ?(expect_degraded = false) r =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  if r.lt_sent <> r.lt_answered + r.lt_rejected then
    fail "%d of %d requests unaccounted for (answered %d + rejected %d)"
      (r.lt_sent - r.lt_answered - r.lt_rejected)
      r.lt_sent r.lt_answered r.lt_rejected;
  if r.lt_p99 > p99_bound then
    fail "p99 %.6fs over the %.6fs bound" r.lt_p99 p99_bound;
  if expect_degraded && r.lt_degraded + r.lt_partials = 0 then
    fail "no degraded-mode answers under the fault plan";
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

(* --- socket client ----------------------------------------------------------- *)

let connect = function
  | Server.Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Server.Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      fd

let run_socket ?(seed = 42) ?(requests = 200) ?(timeout_s = 30.0)
    ?(shutdown = false) transport =
  ignore seed;
  match connect transport with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot connect to %s: %s"
               (Server.transport_to_string transport) (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.set_nonblock fd;
          let tally = tally_zero () in
          let sent_at : (string, float) Hashtbl.t = Hashtbl.create 64 in
          let pending = Buffer.create 4096 in
          let reqs = List.init requests request_for in
          List.iter
            (fun r ->
              Buffer.add_string pending (Proto.request_to_line r);
              Buffer.add_char pending '\n')
            reqs;
          (* The shutdown op is sent only after every data response has
             come back — interleaving it with the stream could stop the
             daemon with requests still in flight. *)
          let shutdown_queued = ref false in
          let expected = requests + if shutdown then 1 else 0 in
          let t0 = Unix.gettimeofday () in
          let give_up = t0 +. timeout_s in
          let inbuf = Buffer.create 4096 in
          let seen = ref 0 in
          let out = ref (Buffer.contents pending) in
          let first_sent = ref nan in
          let last_answer = ref t0 in
          let handle_line line =
            if line <> "" then begin
              incr seen;
              let now = Unix.gettimeofday () in
              last_answer := now;
              match Proto.response_of_line line with
              | Error _ -> tally.rejected <- tally.rejected + 1
              | Ok resp when resp.Proto.rs_id = "shutdown" ->
                  () (* the shutdown acknowledgement is bookkeeping, not load *)
              | Ok resp ->
                  let sojourn =
                    match Hashtbl.find_opt sent_at resp.Proto.rs_id with
                    | Some t -> now -. t
                    | None -> 0.0
                  in
                  tally_response tally resp ~sojourn
            end
          in
          let rec pump () =
            if shutdown && (not !shutdown_queued) && !seen >= requests then begin
              shutdown_queued := true;
              out :=
                !out
                ^ Proto.request_to_line
                    { Proto.rq_id = "shutdown"; rq_client = "loadtest";
                      rq_op = Proto.Shutdown }
                ^ "\n"
            end;
            if !seen >= expected || Unix.gettimeofday () > give_up then ()
            else begin
              let want_write = !out <> "" in
              match
                Unix.select [ fd ] (if want_write then [ fd ] else []) [] 0.2
              with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
              | rs, ws, _ ->
                  if ws <> [] && !out <> "" then begin
                    (match
                       Unix.single_write_substring fd !out 0
                         (min 4096 (String.length !out))
                     with
                    | k ->
                        if Float.is_nan !first_sent then
                          first_sent := Unix.gettimeofday ();
                        out := String.sub !out k (String.length !out - k)
                    | exception
                        Unix.Unix_error
                          ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
                    (* Conservative: stamp send time at first write for
                       every id not yet stamped — latencies then include
                       local queueing, which only overestimates. *)
                    List.iter
                      (fun r ->
                        if not (Hashtbl.mem sent_at r.Proto.rq_id) then
                          Hashtbl.replace sent_at r.Proto.rq_id
                            (Unix.gettimeofday ()))
                      reqs
                  end;
                  if rs <> [] then begin
                    let buf = Bytes.create 4096 in
                    match Unix.read fd buf 0 4096 with
                    | 0 -> seen := expected (* server closed *)
                    | k ->
                        Buffer.add_subbytes inbuf buf 0 k;
                        let data = Buffer.contents inbuf in
                        Buffer.clear inbuf;
                        let parts = String.split_on_char '\n' data in
                        let rec go = function
                          | [] -> ()
                          | [ tail ] -> Buffer.add_string inbuf tail
                          | l :: ls -> handle_line l; go ls
                        in
                        go parts
                    | exception
                        Unix.Unix_error
                          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                      -> ()
                  end;
                  pump ()
            end
          in
          pump ();
          let makespan =
            if Float.is_nan !first_sent then 0.0 else !last_answer -. !first_sent
          in
          let sent = requests in
          let r = finish_result ~sent ~makespan ~max_queue:0 ~injected:[] tally in
          let accounted = r.lt_answered + r.lt_rejected in
          if accounted < sent then
            Error
              (Printf.sprintf "%d of %d requests lost (no response within %gs)"
                 (sent - accounted) sent timeout_s)
          else Ok r)
