(* The daemon transport: one select loop, no per-connection threads.

   Clients speak newline-delimited JSON.  Each loop iteration drains the
   readable sockets, decodes at most [max_batch] complete lines, fans the
   batch through [Vpar.Pool.supervised_map] (so injected worker crashes
   and hangs are retried, and a task that exhausts its budget is answered
   with an explicit [dropped] error), then queues the responses for
   writing.  Requests beyond the engine's queue limit are rejected at
   admission with [overload] — the queue is bounded, the client is told.

   Durability is crash-only: the engine checkpoints its counters to the
   serving journal periodically and on clean shutdown; a kill -9 between
   checkpoints loses only the tail counters, which the restart banner
   reports as "resumed". *)

type transport = Unix_path of string | Tcp of int

let transport_to_string = function
  | Unix_path p -> p
  | Tcp port -> Printf.sprintf "tcp:127.0.0.1:%d" port

type client = {
  fd : Unix.file_descr;
  name : string;
  inbuf : Buffer.t;
  mutable skipping : bool;  (* discarding the tail of an oversized line *)
  mutable out : Buffer.t;
  mutable closing : bool;  (* close once [out] drains *)
}

(* A slow consumer cannot balloon the daemon: past this backlog we drop
   the connection instead of buffering without bound. *)
let max_out_bytes = 1 lsl 20

let stop_requested = ref false

let install_signals () =
  let stop _ = stop_requested := true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle stop) with _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle stop) with _ -> ());
  (* A client vanishing mid-write must not kill the daemon. *)
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ()

let listen_socket = function
  | Unix_path path ->
      (* A stale socket file from a crashed daemon would block the bind;
         crash-only restart means we always take the address over. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.listen fd 64;
      fd

(* Pull complete lines out of a client's input buffer, enforcing the
   protocol's line cap: an over-long line is answered with one
   [bad_request] marker (the empty pseudo-line ["\x00oversized"]) and its
   bytes are discarded until the next newline. *)
let drain_lines c =
  let data = Buffer.contents c.inbuf in
  Buffer.clear c.inbuf;
  let lines = ref [] in
  let start = ref 0 in
  let n = String.length data in
  for i = 0 to n - 1 do
    if data.[i] = '\n' then begin
      let line = String.sub data !start (i - !start) in
      start := i + 1;
      if c.skipping then c.skipping <- false
      else lines := line :: !lines
    end
  done;
  let rest = String.sub data !start (n - !start) in
  if c.skipping then ()
  else if String.length rest > Proto.max_line_bytes then begin
    (* Oversized without a newline yet: reject now, skip the tail. *)
    c.skipping <- true;
    lines := "\x00oversized" :: !lines
  end
  else Buffer.add_string c.inbuf rest;
  List.rev !lines

let enqueue_response c line =
  if Buffer.length c.out <= max_out_bytes then begin
    Buffer.add_string c.out line;
    Buffer.add_char c.out '\n'
  end
  else c.closing <- true

(* Recover a request id from a line we could not serve normally, so even
   a dropped request's rejection can be matched by the client. *)
let id_of_line line =
  match Proto.request_of_line line with
  | Ok r -> r.Proto.rq_id
  | Error (id, _, _) -> id

let run ?pool ?(max_batch = 64) ~engine transport =
  let cfg = Engine.config engine in
  install_signals ();
  stop_requested := false;
  let listen_fd = listen_socket transport in
  let clients : (Unix.file_descr, client) Hashtbl.t = Hashtbl.create 16 in
  (* Decoded-but-unserved requests, FIFO across loop iterations.  Lines
     beyond [max_batch] wait here — they are never dropped — and lines
     beyond the queue limit are rejected explicitly at admission. *)
  let backlog : (client * string * float) Queue.t = Queue.create () in
  let shutdown_after_flush = ref false in
  (* The daemon's virtual clock: advanced per request at the configured
     token rate so a well-behaved client stream is never rate-limited by
     the wall clock it does not share. *)
  let vnow = ref 0.0 in
  let vstep = if cfg.Engine.rate > 0.0 then 1.0 /. cfg.Engine.rate else 1e-3 in
  let s = Engine.stats engine in
  Printf.printf "vecmodel serve: listening on %s (%s)\n%!"
    (transport_to_string transport)
    (if Engine.resumed engine then
       Printf.sprintf "journal resumed: %d received, %d answered"
         s.Engine.received s.Engine.answered
     else "journal fresh");
  (match Engine.startup_error engine with
  | Some m -> Printf.printf "vecmodel serve: model rejected: %s (serving baseline)\n%!" m
  | None -> ());
  let close_client c =
    Hashtbl.remove clients c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let accept_clients () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, addr ->
        Unix.set_nonblock fd;
        let name =
          match addr with
          | Unix.ADDR_UNIX _ -> Printf.sprintf "unix-%d" (Hashtbl.length clients)
          | Unix.ADDR_INET (a, p) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        in
        Hashtbl.replace clients fd
          { fd; name; inbuf = Buffer.create 256; skipping = false;
            out = Buffer.create 256; closing = false }
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
  in
  let read_client c =
    let buf = Bytes.create 4096 in
    match Unix.read c.fd buf 0 4096 with
    | 0 -> close_client c
    | k -> Buffer.add_subbytes c.inbuf buf 0 k
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_client c
  in
  let write_client c =
    let data = Buffer.contents c.out in
    if data <> "" then begin
      match Unix.single_write_substring c.fd data 0 (String.length data) with
      | k ->
          Buffer.clear c.out;
          if k < String.length data then
            Buffer.add_substring c.out data k (String.length data - k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_client c
    end;
    if c.closing && Buffer.length c.out = 0 then close_client c
  in
  (* Serve one batch of decoded lines.  Position in the batch stands in
     for queue depth: arrivals past the engine's queue bound see a full
     queue and are rejected at admission. *)
  let serve_batch batch =
    let results =
      match batch with
      | [] -> []
      | [ (c, line, depth, now) ] ->
          [ (c, Engine.handle_line engine ~now ~queue_depth:depth
               ~client:c.name line) ]
      | _ ->
          let keys =
            Array.of_list
              (List.map (fun (_, line, _, _) -> id_of_line line) batch)
          in
          let outs =
            Vpar.Pool.supervised_map ?pool
              ~task_key:(fun i -> Printf.sprintf "serve|%s" keys.(i))
              (fun (c, line, depth, now) ->
                Engine.handle_line engine ~now ~queue_depth:depth
                  ~client:c.name line)
              batch
          in
          List.map2
            (fun (c, line, _, _) r ->
              match r with
              | Ok out -> (c, out)
              | Error (f : Vpar.Pool.failure) ->
                  (* The worker running this request was lost past its
                     retry budget: the client still gets an explicit
                     answer. *)
                  ( c,
                    ( Proto.response_to_line
                        (Proto.error ~id:(id_of_line line) Proto.E_dropped
                           (Printf.sprintf "serving worker lost (%s)"
                              f.Vpar.Pool.f_error)),
                      false ) ))
            batch outs
    in
    List.iter
      (fun (c, (line, shutdown)) ->
        enqueue_response c line;
        if shutdown then shutdown_after_flush := true)
      results
  in
  let rec loop () =
    if !stop_requested then ()
    else begin
      let rds =
        listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients []
      in
      let wrs =
        Hashtbl.fold
          (fun fd c acc -> if Buffer.length c.out > 0 || c.closing then fd :: acc else acc)
          clients []
      in
      (match Unix.select rds wrs [] 0.2 with
      | rs, ws, _ ->
          if List.mem listen_fd rs then accept_clients ();
          List.iter
            (fun fd ->
              if fd <> listen_fd then
                match Hashtbl.find_opt clients fd with
                | Some c -> read_client c
                | None -> ())
            rs;
          (* Decode new lines into the backlog; past the queue limit the
             request is rejected right here, explicitly. *)
          Hashtbl.iter
            (fun _ c ->
              List.iter
                (fun line ->
                  let line =
                    if line = "\x00oversized" then
                      String.make (Proto.max_line_bytes + 1) ' '
                    else line
                  in
                  let now = !vnow in
                  vnow := !vnow +. vstep;
                  if Queue.length backlog >= cfg.Engine.queue_limit then begin
                    let out, sd =
                      Engine.handle_line engine ~now
                        ~queue_depth:(Queue.length backlog) ~client:c.name
                        line
                    in
                    enqueue_response c out;
                    if sd then shutdown_after_flush := true
                  end
                  else Queue.add (c, line, now) backlog)
                (drain_lines c))
            clients;
          (* Serve up to max_batch backlogged requests, oldest first. *)
          let batch = ref [] in
          let count = ref 0 in
          while !count < max_batch && not (Queue.is_empty backlog) do
            let c, line, now = Queue.pop backlog in
            batch := (c, line, Queue.length backlog, now) :: !batch;
            incr count
          done;
          serve_batch (List.rev !batch);
          List.iter
            (fun fd ->
              match Hashtbl.find_opt clients fd with
              | Some c -> write_client c
              | None -> ())
            ws
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      if !shutdown_after_flush then begin
        (* Push out whatever is pending, briefly, then stop. *)
        let deadline = Unix.gettimeofday () +. 1.0 in
        let rec flush () =
          let pending =
            Hashtbl.fold
              (fun fd c acc -> if Buffer.length c.out > 0 then (fd, c) :: acc else acc)
              clients []
          in
          if pending <> [] && Unix.gettimeofday () < deadline then begin
            (match Unix.select [] (List.map fst pending) [] 0.1 with
            | _, ws, _ ->
                List.iter
                  (fun fd ->
                    match Hashtbl.find_opt clients fd with
                    | Some c -> write_client c
                    | None -> ())
                  ws
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
            flush ()
          end
        in
        flush ()
      end
      else loop ()
    end
  in
  loop ();
  Engine.checkpoint engine;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (match transport with
  | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  let s = Engine.stats engine in
  Printf.printf "vecmodel serve: stopped (%d received, %d answered)\n%!"
    s.Engine.received s.Engine.answered
