(** Per-client token buckets over the serving tier's virtual clock.  A
    bucket holds up to [burst] tokens and refills at [rate] tokens per
    virtual second; each admitted request spends one token.  Decisions
    are a pure function of the request's virtual arrival time, so rate
    limiting is deterministic in the loadtest simulation. *)

type t

(** [create ~rate ~burst] starts full.  [rate <= 0] disables limiting
    (every request admitted). *)
val create : rate:float -> burst:float -> t

(** Spend one token at virtual time [now]; [false] means rate-limited.
    [now] must be monotone per bucket (earlier calls with later times
    would refill retroactively). *)
val admit : t -> now:float -> bool

(** Tokens available at [now] (diagnostic). *)
val level : t -> now:float -> float

(** A keyed family of buckets, one per client id, capped at [max_clients]
    tracked clients (beyond the cap, clients share the overflow bucket —
    a hostile client cannot balloon the table). *)
module Family : sig
  type bucket = t
  type t

  val create : rate:float -> burst:float -> t
  val admit : t -> client:string -> now:float -> bool
  val clients : t -> int
end
