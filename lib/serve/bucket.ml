(* Token buckets over the serving tier's virtual clock.

   The serving tier models time cooperatively (virtual stage costs, like
   the pool's simulated hangs), so the bucket refills against the
   request's virtual arrival time rather than a wall clock: decisions are
   deterministic and byte-identical across worker counts. *)

type t = {
  rate : float;  (* tokens per virtual second; <= 0 disables limiting *)
  burst : float;
  mutable tokens : float;
  mutable last : float;  (* virtual time of the last refill *)
  lock : Mutex.t;
}

let create ~rate ~burst =
  { rate; burst = Float.max burst 1.0; tokens = Float.max burst 1.0;
    last = 0.0; lock = Mutex.create () }

let refill b ~now =
  if now > b.last then begin
    b.tokens <- Float.min b.burst (b.tokens +. ((now -. b.last) *. b.rate));
    b.last <- now
  end

let admit b ~now =
  if b.rate <= 0.0 then true
  else begin
    Mutex.lock b.lock;
    refill b ~now;
    let ok = b.tokens >= 1.0 in
    if ok then b.tokens <- b.tokens -. 1.0;
    Mutex.unlock b.lock;
    ok
  end

let level b ~now =
  if b.rate <= 0.0 then b.burst
  else begin
    Mutex.lock b.lock;
    refill b ~now;
    let v = b.tokens in
    Mutex.unlock b.lock;
    v
  end

module Family = struct
  type bucket = t

  let mk_bucket = create

  type nonrec t = {
    rate : float;
    burst : float;
    table : (string, bucket) Hashtbl.t;
    overflow : bucket;  (* shared by clients beyond the tracking cap *)
    lock : Mutex.t;
  }

  let max_clients = 256

  let create ~rate ~burst =
    { rate; burst; table = Hashtbl.create 16;
      overflow = mk_bucket ~rate ~burst; lock = Mutex.create () }

  let bucket_for f client =
    Mutex.lock f.lock;
    let b =
      match Hashtbl.find_opt f.table client with
      | Some b -> b
      | None ->
          if Hashtbl.length f.table >= max_clients then f.overflow
          else begin
            let b = mk_bucket ~rate:f.rate ~burst:f.burst in
            Hashtbl.add f.table client b;
            b
          end
    in
    Mutex.unlock f.lock;
    b

  let admit f ~client ~now = admit (bucket_for f client) ~now

  let clients f =
    Mutex.lock f.lock;
    let n = Hashtbl.length f.table in
    Mutex.unlock f.lock;
    n
end
