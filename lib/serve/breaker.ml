(* Per-stage circuit breakers, counted in requests rather than seconds.

   The serving tier's clock is virtual, so breaker cooldowns are measured
   on the request counter: "open for 8 requests" is deterministic in the
   loadtest simulation where "open for 100ms" would not be. *)

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type t = {
  name : string;
  threshold : int;
  cooldown : int;
  mutable consecutive : int;  (* consecutive failures while closed *)
  mutable opened_at : int;  (* tick of the last trip; -1 = never *)
  mutable is_open : bool;
  mutable trips : int;
  lock : Mutex.t;
}

let create ?(threshold = 5) ?(cooldown = 8) ~name () =
  { name; threshold = max 1 threshold; cooldown = max 1 cooldown;
    consecutive = 0; opened_at = -1; is_open = false; trips = 0;
    lock = Mutex.create () }

let name b = b.name

let state_locked b ~tick =
  if not b.is_open then Closed
  else if tick - b.opened_at >= b.cooldown then Half_open
  else Open

let state b ~tick =
  Mutex.lock b.lock;
  let s = state_locked b ~tick in
  Mutex.unlock b.lock;
  s

let allow b ~tick =
  match state b ~tick with Closed | Half_open -> true | Open -> false

let success b =
  Mutex.lock b.lock;
  b.consecutive <- 0;
  b.is_open <- false;
  Mutex.unlock b.lock

let failure b ~tick =
  Mutex.lock b.lock;
  (match state_locked b ~tick with
  | Half_open ->
      (* The probe failed: re-open for another cooldown without counting
         a fresh trip streak. *)
      b.opened_at <- tick
  | Open -> ()
  | Closed ->
      b.consecutive <- b.consecutive + 1;
      if b.consecutive >= b.threshold then begin
        b.is_open <- true;
        b.opened_at <- tick;
        b.trips <- b.trips + 1;
        b.consecutive <- 0
      end);
  Mutex.unlock b.lock

let trips b =
  Mutex.lock b.lock;
  let v = b.trips in
  Mutex.unlock b.lock;
  v
