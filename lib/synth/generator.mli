(** Random kernel generation for property tests and training-set extension
    (the paper's "add more tests" future-work item).  Kernels are pure
    functions of their seed and always well-formed. *)

val kernel : ?max_ops:int -> int -> Vir.Kernel.t

val batch : ?max_ops:int -> count:int -> int -> Vir.Kernel.t list

(** Adversarial dependence-stress kernels over a single array with random
    small offsets; frequently illegal to vectorize.  Used to check that a
    "legal" verdict always implies a semantics-preserving transform. *)
val dep_kernel : int -> Vir.Kernel.t

(** Two-level dependence-stress nests over one matrix with random small
    offsets in both subscripts (direction-vector coverage: carried at
    either depth, (<,>) shapes, interchange legality).  Bounds-safe at any
    problem size. *)
val nest_kernel : int -> Vir.Kernel.t
