(* Random kernel generator.

   Two uses: property-based testing of the whole pipeline (every generated
   kernel must validate, interpret, and survive vectorization with identical
   semantics), and the paper's future-work item of widening the training set
   beyond TSVC with synthetic loop bodies ("add more tests to cover all
   instruction types"). *)

open Vir

(* Deterministic splitmix-style PRNG so a kernel is a pure function of its
   seed. *)
type rng = { mutable state : int }

let rng seed = { state = (seed * 2654435761) land max_int }

let next r =
  let x = r.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r.state <- x land max_int;
  r.state

let range r lo hi = lo + (next r mod (hi - lo + 1))

let pick r xs = List.nth xs (range r 0 (List.length xs - 1))

(* Pools the generator draws from. *)
let input_arrays = [ "b"; "c"; "d"; "e" ]

let arith_ops = [ Op.Add; Op.Sub; Op.Mul; Op.Min; Op.Max ]

(* Generate one kernel.  The shape is a single innermost loop whose body
   loads a few values (with a random mix of access patterns), combines them
   through a random expression tree, optionally guards with a compare+select,
   and ends in a contiguous store and/or a reduction.  Construction is
   correct by construction: no illegal dependences are ever introduced, which
   the tests then verify through [Vdeps]. *)
let kernel ?(max_ops = 8) seed =
  let r = rng (seed + 1) in
  let b = Builder.make (Printf.sprintf "synth%04d" seed) ~descr:"generated" in
  let i = Builder.loop b "i" Kernel.Tn in
  (* Loads: 2-4 values with varied access patterns. *)
  let n_loads = range r 2 4 in
  let loads =
    List.init n_loads (fun j ->
        let arr = List.nth input_arrays (j mod List.length input_arrays) in
        match range r 0 9 with
        | 0 -> Builder.load b arr [ Builder.ix_rev i ]
        | 1 -> Builder.load b arr [ Builder.ix ~scale:2 i ]
        | 2 -> Builder.load b arr [ Builder.ix ~off:(range r 1 3) i ]
        | 3 ->
            let idx = Builder.load_index b "ip" [ Builder.ix i ] in
            Builder.load_ix b arr idx
        | _ -> Builder.load b arr [ Builder.ix i ])
  in
  (* Expression tree over the loaded values. *)
  let n_ops = range r 1 max_ops in
  let values = ref loads in
  for _ = 1 to n_ops do
    let x = pick r !values and y = pick r !values in
    let v =
      match range r 0 9 with
      | 0 -> Builder.fma b x y (pick r !values)
      | 1 -> Builder.divf b x (Builder.cf (1.0 +. float_of_int (range r 1 4)))
      | 2 -> Builder.sqrtf b (Builder.absf b x)
      | 3 ->
          let cond = Builder.cmp b Op.Gt x y in
          Builder.select b cond x y
      | _ -> Builder.bin b Types.F32 (pick r arith_ops) x y
    in
    values := v :: !values
  done;
  let result = List.hd !values in
  (* Sink: contiguous store, reduction, or both. *)
  (match range r 0 3 with
  | 0 -> Builder.reduce b "acc" (pick r Op.all_redops) result ~init:0.0
  | 1 ->
      Builder.store b "a" [ Builder.ix i ] result;
      Builder.reduce b "acc" Op.Rsum result
  | _ -> Builder.store b "a" [ Builder.ix i ] result);
  Builder.finish b

(* A batch of kernels for training-set extension experiments. *)
let batch ?(max_ops = 8) ~count seed =
  List.init count (fun j -> kernel ~max_ops (seed + j))

(* Adversarial dependence kernels: several statements reading and writing
   ONE array at random small offsets, in random order.  Unlike [kernel],
   these are frequently *illegal* to vectorize; they exist to stress the
   soundness contract that the tests then check: whenever the dependence
   analysis declares a width legal, the vectorized execution must match the
   scalar one bit for bit. *)
let dep_kernel seed =
  let r = rng (seed + 77) in
  let b = Builder.make (Printf.sprintf "dep%04d" seed) ~descr:"generated (dependence stress)" in
  let i = Builder.loop b ~start:4 "i" (Kernel.Tn_minus 4) in
  let off () = range r (-3) 3 in
  let load_a () = Builder.load b "a" [ Builder.ix ~off:(off ()) i ] in
  let load_other name = Builder.load b name [ Builder.ix i ] in
  let nstmt = range r 2 4 in
  let last = ref (load_other "b") in
  for _ = 1 to nstmt do
    let v =
      match range r 0 3 with
      | 0 -> Builder.addf b (load_a ()) !last
      | 1 -> Builder.mulf b (load_other "c") !last
      | 2 -> Builder.fma b (load_a ()) (load_other "b") !last
      | _ -> Builder.subf b !last (load_a ())
    in
    last := v;
    match range r 0 2 with
    | 0 -> Builder.store b "a" [ Builder.ix ~off:(off ()) i ] v
    | 1 -> Builder.store b "d" [ Builder.ix i ] v
    | _ -> ()
  done;
  (* Guarantee an observable effect and at least one write to [a]. *)
  Builder.store b "a" [ Builder.ix ~off:(off ()) i ] !last;
  Builder.finish b

(* Two-level nests over one matrix with random small offsets in both
   subscripts: the direction-vector stress for the nest-wide graph.  The
   inner loop is what LLV/SLP widen, so these also feed the legality
   cross-check; offsets are clamped to the [start=2 / Tn2_minus 4] margin
   so every subscript stays in bounds at any problem size. *)
let nest_kernel seed =
  let r = rng (seed + 131) in
  let b =
    Builder.make
      (Printf.sprintf "nest%04d" seed)
      ~descr:"generated (2-level dependence stress)"
  in
  let j = Builder.loop b ~start:2 "j" (Kernel.Tn2_minus 4) in
  let i = Builder.loop b ~start:2 "i" (Kernel.Tn2_minus 4) in
  let off () = range r (-2) 2 in
  let load_aa () =
    Builder.load b "aa" [ Builder.ix ~off:(off ()) j; Builder.ix ~off:(off ()) i ]
  in
  let load_other name = Builder.load b name [ Builder.ix i ] in
  let nstmt = range r 1 3 in
  let last = ref (load_other "b") in
  for _ = 1 to nstmt do
    let v =
      match range r 0 3 with
      | 0 -> Builder.addf b (load_aa ()) !last
      | 1 -> Builder.mulf b (load_other "c") !last
      | 2 -> Builder.fma b (load_aa ()) (load_other "b") !last
      | _ -> Builder.subf b !last (load_aa ())
    in
    last := v;
    match range r 0 2 with
    | 0 ->
        Builder.store b "aa"
          [ Builder.ix ~off:(off ()) j; Builder.ix ~off:(off ()) i ]
          v
    | 1 -> Builder.store b "d" [ Builder.ix i ] v
    | _ -> ()
  done;
  (* Guarantee an observable effect and at least one write to [aa]. *)
  Builder.store b "aa"
    [ Builder.ix ~off:(off ()) j; Builder.ix ~off:(off ()) i ]
    !last;
  Builder.finish b
