(* Interface-completeness check: every .ml under the given roots must have
   a matching .mli, so library APIs stay documented and sealed.  Roots are
   walked recursively (dot- and underscore-prefixed directories skipped),
   so a newly added library directory is covered the moment it exists —
   no per-directory registration.  Wired into [dune runtest] over lib/. *)

let has_mli dir base = Sys.file_exists (Filename.concat dir (base ^ ".mli"))

let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'

let rec walk dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun f ->
         let path = Filename.concat dir f in
         if Sys.is_directory path then if skip_dir f then [] else walk path
         else if Filename.check_suffix f ".ml" then
           let base = Filename.chop_suffix f ".ml" in
           if has_mli dir base then [] else [ path ]
         else [])

let check_root dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then (
    Printf.eprintf "check_mli: no such directory: %s\n" dir;
    exit 2);
  walk dir

let () =
  let dirs =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "." ] | _ :: ds -> ds
  in
  match List.concat_map check_root dirs with
  | [] -> ()
  | missing ->
      List.iter (Printf.eprintf "check_mli: %s has no .mli\n") missing;
      exit 1
