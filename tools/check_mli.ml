(* Interface-completeness check: every .ml in the given directories must
   have a matching .mli, so library APIs stay documented and sealed.
   Wired into [dune runtest] for lib/analysis. *)

let has_mli dir base = Sys.file_exists (Filename.concat dir (base ^ ".mli"))

let check_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then (
    Printf.eprintf "check_mli: no such directory: %s\n" dir;
    exit 2);
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.filter_map (fun f ->
         let base = Filename.chop_suffix f ".ml" in
         if has_mli dir base then None else Some (Filename.concat dir f))

let () =
  let dirs =
    match Array.to_list Sys.argv with [] | [ _ ] -> [ "." ] | _ :: ds -> ds
  in
  match List.concat_map check_dir dirs with
  | [] -> ()
  | missing ->
      List.iter (Printf.eprintf "check_mli: %s has no .mli\n") missing;
      exit 1
