(* Interface-completeness check: every .ml under the given roots must have
   a matching .mli, so library APIs stay documented and sealed.  Roots are
   walked recursively (dot- and underscore-prefixed directories skipped),
   so a newly added library directory is covered the moment it exists —
   no per-directory registration.  [--require DIR] additionally asserts
   that the walk actually visited DIR and found at least one module there,
   guarding against a hot-path library silently dropping out of the gate
   (e.g. by being renamed or moved outside the walked roots).  Wired into
   [dune runtest] over lib/. *)

let has_mli dir base = Sys.file_exists (Filename.concat dir (base ^ ".mli"))

let skip_dir name =
  String.length name = 0 || name.[0] = '.' || name.[0] = '_'

(* modules seen per visited directory, keyed by path as given *)
let visited : (string, int) Hashtbl.t = Hashtbl.create 16

let rec walk dir =
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.concat_map (fun f ->
         let path = Filename.concat dir f in
         if Sys.is_directory path then if skip_dir f then [] else walk path
         else if Filename.check_suffix f ".ml" then begin
           Hashtbl.replace visited dir
             (1 + Option.value ~default:0 (Hashtbl.find_opt visited dir));
           let base = Filename.chop_suffix f ".ml" in
           if has_mli dir base then [] else [ path ]
         end
         else [])

let check_root dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then (
    Printf.eprintf "check_mli: no such directory: %s\n" dir;
    exit 2);
  walk dir

let () =
  let rec split roots required = function
    | [] -> (List.rev roots, List.rev required)
    | "--require" :: d :: rest -> split roots (d :: required) rest
    | "--require" :: [] ->
        prerr_endline "check_mli: --require expects a directory";
        exit 2
    | d :: rest -> split (d :: roots) required rest
  in
  let roots, required =
    match Array.to_list Sys.argv with
    | [] | [ _ ] -> ([ "." ], [])
    | _ :: args -> split [] [] args
  in
  let roots = if roots = [] then [ "." ] else roots in
  let missing = List.concat_map check_root roots in
  let unvisited =
    List.filter (fun d -> not (Hashtbl.mem visited d)) required
  in
  List.iter (Printf.eprintf "check_mli: %s has no .mli\n") missing;
  List.iter
    (Printf.eprintf "check_mli: required directory %s yielded no modules\n")
    unvisited;
  if missing <> [] || unvisited <> [] then exit 1
